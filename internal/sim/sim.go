// Package sim implements a small deterministic event-driven simulation
// kernel: a virtual clock, a time-ordered event heap and single-server
// FCFS queueing stations. It is the substrate for the disk-array system
// model of Papadopoulos & Manolopoulos (SIGMOD 1998, Section 4.1 and
// Figure 7), where each disk, the shared I/O bus and the CPU are FCFS
// queues.
//
// The kernel is deterministic: events scheduled for the same instant fire
// in scheduling order, so a simulation run is exactly reproducible for a
// given random seed.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a scheduled callback. Events are ordered by Time, ties broken
// by scheduling sequence number.
type event struct {
	time float64
	seq  uint64
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	//lint:allow floatcmp exact-equal event times deliberately fall through to the FIFO seq tie-break
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Simulator is a discrete-event simulator with a virtual clock measured
// in seconds. The zero value is not ready for use; call New.
type Simulator struct {
	now    float64
	events eventHeap
	seq    uint64
	steps  uint64
}

// New returns a simulator with the clock at zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// Steps returns the number of events executed so far.
func (s *Simulator) Steps() uint64 { return s.steps }

// Pending returns the number of events still scheduled.
func (s *Simulator) Pending() int { return len(s.events) }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics: it would silently reorder causality.
func (s *Simulator) At(t float64, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %.9f before now %.9f", t, s.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: invalid event time %v", t))
	}
	s.seq++
	heap.Push(&s.events, &event{time: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d seconds from now.
func (s *Simulator) After(d float64, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %g", d))
	}
	s.At(s.now+d, fn)
}

// Step executes the next event, advancing the clock. It returns false if
// no events remain.
func (s *Simulator) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := heap.Pop(&s.events).(*event)
	s.now = e.time
	s.steps++
	e.fn()
	return true
}

// Run executes events until none remain.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with time <= t, then sets the clock to t.
// Events scheduled beyond t stay pending.
func (s *Simulator) RunUntil(t float64) {
	for len(s.events) > 0 && s.events[0].time <= t {
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}

// StationStats aggregates service statistics for a queueing station.
type StationStats struct {
	Jobs      uint64  // jobs completed
	BusyTime  float64 // total service time delivered
	WaitTime  float64 // total time jobs spent waiting before service
	LastIdle  float64 // time the server last became idle
	MaxQueued int     // high-water mark of jobs queued or in service
}

// MeanWait returns the mean queueing delay per job.
func (st StationStats) MeanWait() float64 {
	if st.Jobs == 0 {
		return 0
	}
	return st.WaitTime / float64(st.Jobs)
}

// Utilization returns the fraction of [0, horizon] the server was busy.
func (st StationStats) Utilization(horizon float64) float64 {
	if horizon <= 0 {
		return 0
	}
	return st.BusyTime / horizon
}

// Station is a single-server FCFS queue. Service demands are known at
// submission time, so the departure instant of each job can be computed
// immediately: finish = max(now, server free time) + service. The
// completion callback is dispatched through the simulator's event heap,
// which keeps all causality visible to the virtual clock.
type Station struct {
	sim      *Simulator
	name     string
	freeAt   float64 // time the server finishes its last accepted job
	inFlight int
	stats    StationStats
}

// NewStation returns a named FCFS station bound to sim.
func NewStation(sim *Simulator, name string) *Station {
	return &Station{sim: sim, name: name}
}

// Name returns the station's diagnostic name.
func (q *Station) Name() string { return q.name }

// Stats returns a copy of the station's statistics.
func (q *Station) Stats() StationStats { return q.stats }

// QueueLen returns the number of jobs queued or in service right now.
func (q *Station) QueueLen() int { return q.inFlight }

// Submit enqueues a job with the given service demand (seconds). done, if
// non-nil, runs at the job's departure instant and receives the times at
// which service started and finished.
func (q *Station) Submit(service float64, done func(start, finish float64)) {
	if service < 0 || math.IsNaN(service) {
		panic(fmt.Sprintf("sim: station %s: invalid service time %g", q.name, service))
	}
	now := q.sim.Now()
	start := now
	if q.freeAt > start {
		start = q.freeAt
	}
	finish := start + service
	q.freeAt = finish
	q.inFlight++
	if q.inFlight > q.stats.MaxQueued {
		q.stats.MaxQueued = q.inFlight
	}
	q.stats.WaitTime += start - now
	q.stats.BusyTime += service
	q.sim.At(finish, func() {
		q.inFlight--
		q.stats.Jobs++
		if q.inFlight == 0 {
			q.stats.LastIdle = finish
		}
		if done != nil {
			done(start, finish)
		}
	})
}

// FreeAt returns the virtual time at which the server will have drained
// every job accepted so far.
func (q *Station) FreeAt() float64 { return q.freeAt }
