package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	s.At(2.0, func() { order = append(order, 2) })
	s.At(1.0, func() { order = append(order, 1) })
	s.At(3.0, func() { order = append(order, 3) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if s.Now() != 3.0 {
		t.Errorf("final clock = %g", s.Now())
	}
	if s.Steps() != 3 {
		t.Errorf("steps = %d", s.Steps())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(1.0, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break violated: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var fired []float64
	s.At(1.0, func() {
		fired = append(fired, s.Now())
		s.After(0.5, func() { fired = append(fired, s.Now()) })
	})
	s.Run()
	if len(fired) != 2 || fired[0] != 1.0 || fired[1] != 1.5 {
		t.Errorf("fired = %v", fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(5.0, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on past scheduling")
			}
		}()
		s.At(1.0, func() {})
	})
	s.Run()
}

func TestInvalidTimePanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on NaN time")
		}
	}()
	s.At(math.NaN(), func() {})
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []float64
	for _, tm := range []float64{1, 2, 3, 4} {
		tm := tm
		s.At(tm, func() { fired = append(fired, tm) })
	}
	s.RunUntil(2.5)
	if len(fired) != 2 {
		t.Fatalf("fired = %v", fired)
	}
	if s.Now() != 2.5 {
		t.Errorf("clock = %g, want 2.5", s.Now())
	}
	if s.Pending() != 2 {
		t.Errorf("pending = %d, want 2", s.Pending())
	}
	s.Run()
	if len(fired) != 4 {
		t.Errorf("after Run fired = %v", fired)
	}
}

func TestStationFCFSNoOverlap(t *testing.T) {
	s := New()
	st := NewStation(s, "disk0")
	type span struct{ start, finish float64 }
	var spans []span
	// Three jobs submitted at t=0 with service 1s each must run
	// back-to-back.
	for i := 0; i < 3; i++ {
		st.Submit(1.0, func(a, b float64) { spans = append(spans, span{a, b}) })
	}
	s.Run()
	if len(spans) != 3 {
		t.Fatalf("completions = %d", len(spans))
	}
	want := []span{{0, 1}, {1, 2}, {2, 3}}
	for i, sp := range spans {
		if sp != want[i] {
			t.Errorf("job %d span = %v, want %v", i, sp, want[i])
		}
	}
	stats := st.Stats()
	if stats.Jobs != 3 {
		t.Errorf("jobs = %d", stats.Jobs)
	}
	if stats.BusyTime != 3 {
		t.Errorf("busy = %g", stats.BusyTime)
	}
	if stats.WaitTime != 3 { // 0 + 1 + 2
		t.Errorf("wait = %g", stats.WaitTime)
	}
	if stats.MeanWait() != 1 {
		t.Errorf("mean wait = %g", stats.MeanWait())
	}
	if stats.MaxQueued != 3 {
		t.Errorf("max queued = %d", stats.MaxQueued)
	}
}

func TestStationIdleGap(t *testing.T) {
	s := New()
	st := NewStation(s, "d")
	var finishes []float64
	s.At(0, func() { st.Submit(1, func(_, f float64) { finishes = append(finishes, f) }) })
	// Second job arrives after the first finished: no queueing delay.
	s.At(5, func() { st.Submit(2, func(_, f float64) { finishes = append(finishes, f) }) })
	s.Run()
	if len(finishes) != 2 || finishes[0] != 1 || finishes[1] != 7 {
		t.Errorf("finishes = %v", finishes)
	}
	if w := st.Stats().WaitTime; w != 0 {
		t.Errorf("wait = %g, want 0", w)
	}
	if u := st.Stats().Utilization(10); math.Abs(u-0.3) > 1e-12 {
		t.Errorf("utilization = %g, want 0.3", u)
	}
}

func TestStationNegativeServicePanics(t *testing.T) {
	s := New()
	st := NewStation(s, "d")
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	st.Submit(-1, nil)
}

// Property: for any set of (arrival, service) pairs submitted in arrival
// order, the FCFS station produces completions in submission order, jobs
// never overlap, and each job starts no earlier than its arrival.
func TestStationFCFSProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%30 + 1
		rnd := rand.New(rand.NewSource(seed))
		s := New()
		st := NewStation(s, "d")
		arr := make([]float64, n)
		svc := make([]float64, n)
		tcur := 0.0
		for i := 0; i < n; i++ {
			tcur += rnd.Float64() * 2
			arr[i] = tcur
			svc[i] = rnd.Float64() * 3
		}
		type rec struct {
			idx           int
			start, finish float64
		}
		var recs []rec
		for i := 0; i < n; i++ {
			i := i
			s.At(arr[i], func() {
				st.Submit(svc[i], func(a, b float64) {
					recs = append(recs, rec{i, a, b})
				})
			})
		}
		s.Run()
		if len(recs) != n {
			return false
		}
		prevFinish := 0.0
		for j, r := range recs {
			if r.idx != j { // completion order == submission order
				return false
			}
			if r.start+1e-12 < arr[r.idx] { // no service before arrival
				return false
			}
			if r.start+1e-12 < prevFinish { // no overlap
				return false
			}
			if math.Abs(r.finish-r.start-svc[r.idx]) > 1e-9 {
				return false
			}
			prevFinish = r.finish
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Determinism: two identical runs produce identical traces.
func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		s := New()
		st := NewStation(s, "d")
		rnd := rand.New(rand.NewSource(42))
		var trace []float64
		for i := 0; i < 50; i++ {
			at := rnd.Float64() * 10
			svc := rnd.Float64()
			s.At(at, func() {
				st.Submit(svc, func(_, f float64) { trace = append(trace, f) })
			})
		}
		s.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("trace lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %g vs %g", i, a[i], b[i])
		}
	}
}
