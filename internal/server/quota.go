package server

import (
	"sync"
	"time"
)

// quotaSet implements per-tenant token buckets: each tenant accrues
// rate tokens per second up to burst, and each admitted query spends
// one. Buckets are created lazily on first sight of a tenant and
// refilled on demand from the configured clock, so there is no
// background goroutine to manage.
type quotaSet struct {
	rate  float64 // tokens per second
	burst float64 // bucket capacity
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket // guarded by mu
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newQuotaSet(rate, burst float64, now func() time.Time) *quotaSet {
	if burst < 1 {
		burst = 1
	}
	return &quotaSet{
		rate:    rate,
		burst:   burst,
		now:     now,
		buckets: make(map[string]*bucket),
	}
}

// allow spends one token from tenant's bucket if available. When the
// bucket is dry it reports false plus how long until the next token
// accrues — the Retry-After hint.
func (q *quotaSet) allow(tenant string) (bool, time.Duration) {
	t := q.now()
	q.mu.Lock()
	defer q.mu.Unlock()
	b, ok := q.buckets[tenant]
	if !ok {
		b = &bucket{tokens: q.burst, last: t}
		q.buckets[tenant] = b
	}
	if dt := t.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * q.rate
		if b.tokens > q.burst {
			b.tokens = q.burst
		}
	}
	b.last = t
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	if q.rate <= 0 {
		// Unrefillable bucket: burst was the lifetime allowance.
		return false, time.Second
	}
	wait := time.Duration((1 - b.tokens) / q.rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return false, wait
}
