// Package server is the network query service: an HTTP/JSON kNN
// endpoint fronting the concurrent execution engine, with per-tenant
// token-bucket quotas, array-aware admission control, and graceful
// shutdown that drains in-flight queries. It is the paper's parallel
// R-tree engine made multi-user: many clients share one disk array,
// and the service sheds load before the array's queues collapse
// instead of letting every query slow down together.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/query"
)

// Backend is the query engine surface the server needs. *exec.Engine
// implements it directly; tests substitute fakes to script saturation
// and blocking behavior.
type Backend interface {
	// KNN answers one k-nearest-neighbor query; the context cancels it
	// mid-flight. Must be safe for concurrent use.
	KNN(ctx context.Context, alg query.Algorithm, q geom.Point, k int, opts query.Options) ([]query.Neighbor, *query.Stats, error)
	// QueueDepths reports each disk's pending load (queued plus
	// in-flight fetches) — the admission-control signal.
	QueueDepths() []int64
}

// Config tunes the service. The zero value of every field except
// Backend is usable: no quotas, no load shedding, no SLO accounting.
type Config struct {
	// Backend answers the queries. Required.
	Backend Backend

	// QueueWatermark sheds load (429) while any disk's queue depth is
	// at or above this value. 0 disables admission control.
	QueueWatermark int64
	// RetryAfter is the hint sent with shed-load 429s (quota 429s
	// compute their own from the token deficit). Default 1s.
	RetryAfter time.Duration

	// QuotaRate is each tenant's sustained admission rate in queries
	// per second. 0 disables quotas.
	QuotaRate float64
	// QuotaBurst is the token-bucket capacity (instantaneous burst).
	// Default max(QuotaRate, 1).
	QuotaBurst float64
	// TenantHeader names the header carrying the tenant's API key.
	// Default "X-API-Key"; requests without it are tenant "anonymous".
	TenantHeader string

	// SLOTarget counts a served query as an SLO violation when its
	// end-to-end latency exceeds this. 0 disables the counter.
	SLOTarget time.Duration
	// MaxK caps the per-query k. Default 1024.
	MaxK int

	// Tenants receives per-tenant latency histograms and SLO counters;
	// a fresh set is created when nil.
	Tenants *obs.TenantSet

	// Now is the clock (test seam). Default time.Now.
	Now func() time.Time
}

// Server is a running (or startable) query service.
type Server struct {
	cfg     Config
	tenants *obs.TenantSet
	quotas  *quotaSet // nil when quotas are disabled
	mux     *http.ServeMux

	httpSrv  *http.Server
	addr     net.Addr
	serveErr chan error // buffered; receives Serve's return exactly once
}

// New builds a service over cfg.Backend.
func New(cfg Config) (*Server, error) {
	if cfg.Backend == nil {
		return nil, errors.New("server: Config.Backend is required")
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.TenantHeader == "" {
		cfg.TenantHeader = "X-API-Key"
	}
	if cfg.MaxK <= 0 {
		cfg.MaxK = 1024
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	s := &Server{cfg: cfg, tenants: cfg.Tenants, serveErr: make(chan error, 1)}
	if s.tenants == nil {
		s.tenants = obs.NewTenantSet()
	}
	if cfg.QuotaRate > 0 {
		burst := cfg.QuotaBurst
		if burst <= 0 {
			burst = cfg.QuotaRate
		}
		s.quotas = newQuotaSet(cfg.QuotaRate, burst, cfg.Now)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/knn", s.handleKNN)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s, nil
}

// Handler exposes the routing mux (for httptest and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Tenants exposes the per-tenant metrics registry.
func (s *Server) Tenants() *obs.TenantSet { return s.tenants }

// Start binds addr (use ":0" for an ephemeral port) and serves in a
// background goroutine, returning once the listener is bound. Pass
// non-empty certFile/keyFile to serve TLS.
func (s *Server) Start(addr, certFile, keyFile string) error {
	if s.httpSrv != nil {
		return errors.New("server: already started")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.addr = ln.Addr()
	s.httpSrv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if certFile != "" || keyFile != "" {
			s.serveErr <- s.httpSrv.ServeTLS(ln, certFile, keyFile)
		} else {
			s.serveErr <- s.httpSrv.Serve(ln)
		}
	}()
	return nil
}

// Addr is the bound listen address (nil before Start).
func (s *Server) Addr() net.Addr { return s.addr }

// Shutdown stops accepting new queries and waits for in-flight
// handlers to drain (their request contexts stay live), until ctx
// expires. It returns the background Serve error if the listener died
// early — the signal that the service was not actually reachable.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.httpSrv == nil {
		return nil
	}
	serr := s.httpSrv.Shutdown(ctx)
	if err := s.waitServe(); err != nil {
		return err
	}
	return serr
}

// Close stops the server immediately, cancelling in-flight request
// contexts.
func (s *Server) Close() error {
	if s.httpSrv == nil {
		return nil
	}
	cerr := s.httpSrv.Close()
	if err := s.waitServe(); err != nil {
		return err
	}
	return cerr
}

func (s *Server) waitServe() error {
	err := <-s.serveErr
	s.serveErr <- err // re-arm so Close and Shutdown are both safe to call
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// knnRequest is the POST /v1/knn body.
type knnRequest struct {
	Point     []float64 `json:"point"`
	K         int       `json:"k"`
	Algorithm string    `json:"algorithm,omitempty"`
	Trace     bool      `json:"trace,omitempty"`
}

// knnNeighbor is one result: the object id and its squared distance.
// float64 JSON round-trips exactly (shortest-representation encoding),
// so responses can be compared bit-identical to in-process results.
type knnNeighbor struct {
	Object int64   `json:"object"`
	DistSq float64 `json:"distsq"`
}

type knnResponse struct {
	Algorithm string        `json:"algorithm"`
	Neighbors []knnNeighbor `json:"neighbors"`
	Stats     *query.Stats  `json:"stats,omitempty"`
	Trace     []traceEvent  `json:"trace,omitempty"`
}

// traceEvent is the wire form of one obs.Event.
type traceEvent struct {
	Type     string `json:"type"`
	Stage    int    `json:"stage"`
	Page     int64  `json:"page,omitempty"`
	Disk     int    `json:"disk,omitempty"`
	Pages    int    `json:"pages,omitempty"`
	Cached   bool   `json:"cached,omitempty"`
	Batch    int    `json:"batch,omitempty"`
	CacheHit bool   `json:"cache_hit,omitempty"`
	WallNS   int64  `json:"wall_ns,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	tenant := r.Header.Get(s.cfg.TenantHeader)
	if tenant == "" {
		tenant = "anonymous"
	}
	tm := s.tenants.Tenant(tenant)

	// Admission, cheapest gate first: the tenant's own quota, then the
	// array-wide queue-depth watermark. Both shed with 429 so clients
	// back off instead of queueing behind a saturated array.
	if s.quotas != nil {
		if ok, wait := s.quotas.allow(tenant); !ok {
			tm.ObserveQuotaRejected()
			writeRetryAfter(w, wait, "tenant quota exhausted")
			return
		}
	}
	if wm := s.cfg.QueueWatermark; wm > 0 {
		if depth := maxQueueDepth(s.cfg.Backend.QueueDepths()); depth >= wm {
			tm.ObserveLoadShed()
			writeRetryAfter(w, s.cfg.RetryAfter,
				fmt.Sprintf("array saturated (queue depth %d >= watermark %d)", depth, wm))
			return
		}
	}

	var req knnRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		tm.ObserveError()
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Point) == 0 {
		tm.ObserveError()
		writeError(w, http.StatusBadRequest, "point is required")
		return
	}
	if req.K < 1 || req.K > s.cfg.MaxK {
		tm.ObserveError()
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("k must be in [1, %d]", s.cfg.MaxK))
		return
	}
	alg, err := query.AlgorithmByName(req.Algorithm)
	if err != nil {
		tm.ObserveError()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	var opts query.Options
	var collector *obs.Collector
	if req.Trace {
		collector = &obs.Collector{}
		opts.Observer = collector
	}

	start := s.cfg.Now()
	neighbors, stats, err := s.cfg.Backend.KNN(r.Context(), alg, geom.Point(req.Point), req.K, opts)
	elapsed := s.cfg.Now().Sub(start)
	if err != nil {
		tm.ObserveError()
		var inv *query.InvalidQueryError
		switch {
		case errors.As(err, &inv):
			writeError(w, http.StatusBadRequest, err.Error())
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			// Client went away or ran out of patience mid-query.
			writeError(w, http.StatusServiceUnavailable, err.Error())
		default:
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	tm.ObserveServed(elapsed.Seconds(),
		s.cfg.SLOTarget > 0 && elapsed > s.cfg.SLOTarget)

	resp := knnResponse{
		Algorithm: alg.Name(),
		Neighbors: make([]knnNeighbor, len(neighbors)),
		Stats:     stats,
	}
	for i, n := range neighbors {
		resp.Neighbors[i] = knnNeighbor{Object: int64(n.Object), DistSq: n.DistSq}
	}
	if collector != nil {
		events := collector.Events()
		resp.Trace = make([]traceEvent, len(events))
		for i, e := range events {
			resp.Trace[i] = traceEvent{
				Type:     e.Type.String(),
				Stage:    e.Stage,
				Page:     e.Page,
				Disk:     e.Disk,
				Pages:    e.Pages,
				Cached:   e.Cached,
				Batch:    e.Batch,
				CacheHit: e.CacheHit,
				WallNS:   e.Wall.Nanoseconds(),
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// statsResponse is the GET /v1/stats body: per-tenant service metrics
// plus the live admission-control signal.
type statsResponse struct {
	Tenants     map[string]tenantStats `json:"tenants"`
	QueueDepths []int64                `json:"queue_depths"`
}

type tenantStats struct {
	Served        uint64  `json:"served"`
	Errored       uint64  `json:"errored"`
	QuotaRejected uint64  `json:"quota_rejected"`
	LoadShed      uint64  `json:"load_shed"`
	SLOViolations uint64  `json:"slo_violations"`
	LatencyP50    float64 `json:"latency_p50_s"`
	LatencyP99    float64 `json:"latency_p99_s"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	snaps := s.tenants.Snapshot()
	resp := statsResponse{
		Tenants:     make(map[string]tenantStats, len(snaps)),
		QueueDepths: s.cfg.Backend.QueueDepths(),
	}
	for name, ts := range snaps {
		resp.Tenants[name] = tenantStats{
			Served:        ts.Served,
			Errored:       ts.Errored,
			QuotaRejected: ts.QuotaRejected,
			LoadShed:      ts.LoadShed,
			SLOViolations: ts.SLOViolations,
			LatencyP50:    ts.Latency.P50(),
			LatencyP99:    ts.Latency.P99(),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}

func maxQueueDepth(depths []int64) int64 {
	var max int64
	for _, d := range depths {
		if d > max {
			max = d
		}
	}
	return max
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

// writeRetryAfter sheds one request: 429 with a ceil-seconds
// Retry-After header (the header has whole-second resolution, and 0
// would mean "retry immediately").
func writeRetryAfter(w http.ResponseWriter, wait time.Duration, msg string) {
	secs := int64((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: msg})
}
