package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/decluster"
	"repro/internal/disk"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/parallel"
	"repro/internal/query"
)

func buildTree(t testing.TB, n, numDisks int) (*parallel.Tree, []geom.Point) {
	t.Helper()
	pts := dataset.CaliforniaLike(n, 7)
	tree, err := parallel.New(parallel.Config{
		Dim:       2,
		NumDisks:  numDisks,
		Cylinders: disk.HPC2200A().Cylinders,
		Policy:    decluster.ProximityIndex{},
		Seed:      11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.BuildPoints(pts); err != nil {
		t.Fatal(err)
	}
	return tree, pts
}

// postKNN sends one query and decodes the response, reporting the HTTP
// status alongside.
func postKNN(t *testing.T, client *http.Client, url, tenant string, req knnRequest) (int, knnResponse, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		hreq.Header.Set("X-API-Key", tenant)
	}
	resp, err := client.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out knnResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("bad 200 body %q: %v", raw, err)
		}
	}
	return resp.StatusCode, out, resp.Header.Get("Retry-After")
}

// sameAsDriver fails unless the HTTP response is bit-identical to the
// driver's result list: same order, same object ids, same float64
// squared distances after the JSON round trip.
func sameAsDriver(t *testing.T, label string, got []knnNeighbor, want []query.Neighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Object != int64(want[i].Object) || got[i].DistSq != want[i].DistSq {
			t.Fatalf("%s result %d: (%d, %g) vs driver (%d, %g)",
				label, i, got[i].Object, got[i].DistSq, want[i].Object, want[i].DistSq)
		}
	}
}

// TestServerMatchesDriver is the tentpole correctness gate: N
// concurrent HTTP clients hammering a real engine must all receive
// results bit-identical to the sequential in-process query.Driver —
// the network, JSON, and coalescing layers may not perturb a single
// bit of the similarity results.
func TestServerMatchesDriver(t *testing.T) {
	tree, pts := buildTree(t, 1500, 4)
	queries := dataset.SampleQueries(pts, 6, 3)
	drv := query.Driver{Tree: tree}
	want := make([][]query.Neighbor, len(queries))
	for i, q := range queries {
		want[i], _ = drv.Run(query.CRSS{}, q, 8, query.Options{})
	}

	eng, err := exec.New(tree, exec.Config{CoalesceFetches: true})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv, err := New(Config{Backend: eng, SLOTarget: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0", "", ""); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	url := fmt.Sprintf("http://%s/v1/knn", srv.Addr())

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan string, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{}
			for i, q := range queries {
				status, resp, _ := postKNN(t, client, url, fmt.Sprintf("tenant-%d", c%2),
					knnRequest{Point: q, K: 8, Algorithm: "crss", Trace: i == 0})
				if status != http.StatusOK {
					errs <- fmt.Sprintf("client %d query %d: status %d", c, i, status)
					return
				}
				if len(resp.Neighbors) != len(want[i]) {
					errs <- fmt.Sprintf("client %d query %d: %d results, want %d",
						c, i, len(resp.Neighbors), len(want[i]))
					return
				}
				for j := range resp.Neighbors {
					if resp.Neighbors[j].Object != int64(want[i][j].Object) ||
						resp.Neighbors[j].DistSq != want[i][j].DistSq {
						errs <- fmt.Sprintf("client %d query %d result %d: (%d, %g) vs driver (%d, %g)",
							c, i, j, resp.Neighbors[j].Object, resp.Neighbors[j].DistSq,
							want[i][j].Object, want[i][j].DistSq)
						return
					}
				}
				if i == 0 && len(resp.Trace) == 0 {
					errs <- fmt.Sprintf("client %d: trace requested but empty", c)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}

	// The per-tenant registry saw both tenants and no failures.
	snaps := srv.Tenants().Snapshot()
	var served uint64
	for _, ts := range snaps {
		served += ts.Served
		if ts.Errored != 0 || ts.QuotaRejected != 0 || ts.LoadShed != 0 {
			t.Fatalf("unexpected failures in tenant snapshot: %+v", ts)
		}
	}
	if served != clients*uint64(len(queries)) {
		t.Fatalf("served = %d, want %d", served, clients*len(queries))
	}
}

// fakeBackend scripts the Backend surface for admission tests.
type fakeBackend struct {
	depth   atomic.Int64  // reported on every disk
	calls   atomic.Int64  // KNN invocations
	entered chan struct{} // closed once KNN is entered (when non-nil)
	release chan struct{} // KNN blocks until closed (when non-nil)
}

func (f *fakeBackend) KNN(ctx context.Context, alg query.Algorithm, q geom.Point, k int, opts query.Options) ([]query.Neighbor, *query.Stats, error) {
	f.calls.Add(1)
	if f.entered != nil {
		select {
		case <-f.entered:
		default:
			close(f.entered)
		}
	}
	if f.release != nil {
		select {
		case <-f.release:
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
	return []query.Neighbor{{Object: 42, DistSq: 1.5}}, &query.Stats{}, nil
}

func (f *fakeBackend) QueueDepths() []int64 {
	d := f.depth.Load()
	return []int64{d, d}
}

// TestServerShedsLoad verifies admission control against a scripted
// saturated store: queue depths at the watermark shed with 429 +
// Retry-After and never reach the backend; once the depths recede the
// same request is admitted.
func TestServerShedsLoad(t *testing.T) {
	fb := &fakeBackend{}
	srv, err := New(Config{Backend: fb, QueueWatermark: 8, RetryAfter: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0", "", ""); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	url := fmt.Sprintf("http://%s/v1/knn", srv.Addr())
	client := &http.Client{}
	req := knnRequest{Point: []float64{0.5, 0.5}, K: 1}

	fb.depth.Store(8) // at the watermark: shed
	status, _, retry := postKNN(t, client, url, "alice", req)
	if status != http.StatusTooManyRequests {
		t.Fatalf("saturated: status %d, want 429", status)
	}
	if retry != "2" {
		t.Fatalf("saturated: Retry-After %q, want \"2\"", retry)
	}
	if fb.calls.Load() != 0 {
		t.Fatal("shed request reached the backend")
	}

	fb.depth.Store(7) // below the watermark: admitted
	status, resp, _ := postKNN(t, client, url, "alice", req)
	if status != http.StatusOK {
		t.Fatalf("recovered: status %d, want 200", status)
	}
	if len(resp.Neighbors) != 1 || resp.Neighbors[0].Object != 42 {
		t.Fatalf("recovered: bad body %+v", resp)
	}
	snap := srv.Tenants().Snapshot()["alice"]
	if snap.LoadShed != 1 || snap.Served != 1 {
		t.Fatalf("alice snapshot = %+v, want 1 shed + 1 served", snap)
	}
}

// TestServerQuotaPerTenant verifies tenant isolation: one tenant
// burning through its token bucket gets 429s with a refill hint while
// another tenant sails through, and the exhausted tenant recovers once
// the (scripted) clock refills its bucket.
func TestServerQuotaPerTenant(t *testing.T) {
	fb := &fakeBackend{}
	var clock atomic.Int64 // nanos; scripted time
	now := func() time.Time { return time.Unix(0, clock.Load()) }
	srv, err := New(Config{Backend: fb, QuotaRate: 1, QuotaBurst: 3, Now: now})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0", "", ""); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	url := fmt.Sprintf("http://%s/v1/knn", srv.Addr())
	client := &http.Client{}
	req := knnRequest{Point: []float64{0.5, 0.5}, K: 1}

	// Alice burns her burst of 3...
	for i := 0; i < 3; i++ {
		if status, _, _ := postKNN(t, client, url, "alice", req); status != http.StatusOK {
			t.Fatalf("alice request %d: status %d, want 200", i, status)
		}
	}
	// ...and the fourth is rejected with a refill hint.
	status, _, retry := postKNN(t, client, url, "alice", req)
	if status != http.StatusTooManyRequests {
		t.Fatalf("alice over quota: status %d, want 429", status)
	}
	if retry == "" {
		t.Fatal("quota 429 missing Retry-After")
	}
	// Bob is a different bucket: unaffected.
	if status, _, _ := postKNN(t, client, url, "bob", req); status != http.StatusOK {
		t.Fatalf("bob: status %d, want 200", status)
	}
	// Two scripted seconds refill two of alice's tokens.
	clock.Add(2 * int64(time.Second))
	for i := 0; i < 2; i++ {
		if status, _, _ := postKNN(t, client, url, "alice", req); status != http.StatusOK {
			t.Fatalf("alice after refill %d: status %d, want 200", i, status)
		}
	}
	if status, _, _ := postKNN(t, client, url, "alice", req); status != http.StatusTooManyRequests {
		t.Fatalf("alice third after refill: status %d, want 429", status)
	}
	snap := srv.Tenants().Snapshot()
	if a := snap["alice"]; a.Served != 5 || a.QuotaRejected != 2 {
		t.Fatalf("alice snapshot = %+v, want 5 served + 2 rejected", a)
	}
	if b := snap["bob"]; b.Served != 1 || b.QuotaRejected != 0 {
		t.Fatalf("bob snapshot = %+v, want 1 served + 0 rejected", b)
	}
}

// TestServerGracefulShutdown verifies the drain: Shutdown must not
// return while a query is still in flight, the in-flight query must
// complete with its full 200 response, and new connections are
// refused.
func TestServerGracefulShutdown(t *testing.T) {
	fb := &fakeBackend{
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
	srv, err := New(Config{Backend: fb})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0", "", ""); err != nil {
		t.Fatal(err)
	}
	url := fmt.Sprintf("http://%s/v1/knn", srv.Addr())

	type result struct {
		status int
		resp   knnResponse
	}
	inflight := make(chan result, 1)
	go func() {
		status, resp, _ := postKNN(t, &http.Client{}, url, "alice",
			knnRequest{Point: []float64{0.5, 0.5}, K: 1})
		inflight <- result{status, resp}
	}()
	<-fb.entered // the query is inside the backend

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// Shutdown must wait for the in-flight query.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) with a query still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(fb.release)
	select {
	case r := <-inflight:
		if r.status != http.StatusOK {
			t.Fatalf("drained query: status %d, want 200", r.status)
		}
		if len(r.resp.Neighbors) != 1 || r.resp.Neighbors[0].Object != 42 {
			t.Fatalf("drained query: bad body %+v", r.resp)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight query never completed")
	}
	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("Shutdown reported %v after a clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown never returned after the drain")
	}
	if _, err := (&http.Client{Timeout: time.Second}).Post(url, "application/json", bytes.NewReader([]byte("{}"))); err == nil {
		t.Fatal("server still accepting connections after Shutdown")
	}
}

// TestServerSaturationSheds is the acceptance scenario on a real
// engine: every drive spiked so the array genuinely saturates, a tight
// watermark, and a storm of concurrent clients. Load shedding must
// engage (some 429s) while every admitted query still returns results
// bit-identical to the sequential driver.
func TestServerSaturationSheds(t *testing.T) {
	tree, pts := buildTree(t, 1500, 4)
	queries := dataset.SampleQueries(pts, 4, 5)
	drv := query.Driver{Tree: tree}
	want := make([][]query.Neighbor, len(queries))
	for i, q := range queries {
		want[i], _ = drv.Run(query.CRSS{}, q, 8, query.Options{})
	}

	inj := fault.NewInjector(7)
	for d := 0; d < 4; d++ {
		inj.Set(d, fault.Faults{SpikeProb: 1, SpikeDelay: time.Millisecond})
	}
	eng, err := exec.New(tree, exec.Config{CoalesceFetches: true, Fault: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv, err := New(Config{Backend: eng, QueueWatermark: 1, RetryAfter: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0", "", ""); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	url := fmt.Sprintf("http://%s/v1/knn", srv.Addr())

	// The idle array admits the first query: queue depths are zero.
	status, resp, _ := postKNN(t, &http.Client{}, url, "warm", knnRequest{Point: queries[0], K: 8})
	if status != http.StatusOK {
		t.Fatalf("idle-array query: status %d, want 200", status)
	}
	sameAsDriver(t, "idle-array query", resp.Neighbors, want[0])

	// The storm: enough concurrent clients that the 1-deep watermark
	// trips while earlier queries still hold the array.
	const clients = 12
	var served, shed atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan string, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{}
			for round := 0; round < 3; round++ {
				for i, q := range queries {
					status, resp, retry := postKNN(t, client, url, fmt.Sprintf("t%d", c),
						knnRequest{Point: q, K: 8})
					switch status {
					case http.StatusOK:
						served.Add(1)
						if len(resp.Neighbors) != len(want[i]) {
							errs <- fmt.Sprintf("query %d: %d results, want %d", i, len(resp.Neighbors), len(want[i]))
							return
						}
						for j := range resp.Neighbors {
							if resp.Neighbors[j].Object != int64(want[i][j].Object) ||
								resp.Neighbors[j].DistSq != want[i][j].DistSq {
								errs <- fmt.Sprintf("query %d result %d: (%d, %g) vs driver (%d, %g)",
									i, j, resp.Neighbors[j].Object, resp.Neighbors[j].DistSq,
									want[i][j].Object, want[i][j].DistSq)
								return
							}
						}
					case http.StatusTooManyRequests:
						shed.Add(1)
						if retry == "" {
							errs <- "429 without Retry-After"
							return
						}
					default:
						errs <- fmt.Sprintf("unexpected status %d", status)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	if shed.Load() == 0 {
		t.Fatal("watermark 1 on a spiked array shed nothing: admission control never engaged")
	}
	if served.Load() == 0 {
		t.Fatal("every query shed: admitted queries never completed")
	}
	t.Logf("storm: %d served bit-identical, %d shed with 429", served.Load(), shed.Load())
}

// TestServeSoak is the nightly soak: a longer storm against a real
// spiked engine, admitting and shedding under sustained concurrency,
// then a graceful drain. Gated behind SERVE_SOAK=1.
func TestServeSoak(t *testing.T) {
	if os.Getenv("SERVE_SOAK") != "1" {
		t.Skip("set SERVE_SOAK=1 to run the serving soak")
	}
	tree, pts := buildTree(t, 4000, 4)
	queries := dataset.SampleQueries(pts, 16, 9)
	drv := query.Driver{Tree: tree}
	want := make([][]query.Neighbor, len(queries))
	for i, q := range queries {
		want[i], _ = drv.Run(query.CRSS{}, q, 10, query.Options{})
	}
	inj := fault.NewInjector(11)
	for d := 0; d < 4; d++ {
		inj.Set(d, fault.Faults{SpikeProb: 0.5, SpikeDelay: time.Millisecond})
	}
	eng, err := exec.New(tree, exec.Config{CoalesceFetches: true, Fault: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv, err := New(Config{
		Backend:        eng,
		QueueWatermark: 4,
		QuotaRate:      200,
		QuotaBurst:     50,
		SLOTarget:      5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0", "", ""); err != nil {
		t.Fatal(err)
	}
	url := fmt.Sprintf("http://%s/v1/knn", srv.Addr())

	const clients = 16
	deadline := time.Now().Add(30 * time.Second)
	var served, shed atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan string, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{}
			for time.Now().Before(deadline) {
				i := int(served.Load()+shed.Load()) % len(queries)
				status, resp, _ := postKNN(t, client, url, fmt.Sprintf("soak-%d", c%4),
					knnRequest{Point: queries[i], K: 10})
				switch status {
				case http.StatusOK:
					served.Add(1)
					if len(resp.Neighbors) != len(want[i]) {
						errs <- fmt.Sprintf("query %d: %d results, want %d", i, len(resp.Neighbors), len(want[i]))
						return
					}
				case http.StatusTooManyRequests:
					shed.Add(1)
				default:
					errs <- fmt.Sprintf("unexpected status %d", status)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("soak shutdown: %v", err)
	}
	t.Logf("soak: %d served, %d shed over 30s with %d clients", served.Load(), shed.Load(), clients)
}

// TestServerRejectsBadRequests pins the 400 surface: malformed JSON,
// missing point, out-of-range k, unknown algorithm, and a query whose
// dimensionality the validator rejects.
func TestServerRejectsBadRequests(t *testing.T) {
	tree, _ := buildTree(t, 200, 2)
	eng, err := exec.New(tree, exec.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv, err := New(Config{Backend: eng, MaxK: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0", "", ""); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	url := fmt.Sprintf("http://%s/v1/knn", srv.Addr())
	client := &http.Client{}

	resp, err := client.Post(url, "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", resp.StatusCode)
	}

	cases := []knnRequest{
		{K: 1},                              // missing point
		{Point: []float64{0.5, 0.5}, K: 0},  // k below range
		{Point: []float64{0.5, 0.5}, K: 17}, // k above MaxK
		{Point: []float64{0.5, 0.5}, K: 1, Algorithm: "nope"}, // unknown algorithm
		{Point: []float64{0.5, 0.5, 0.5}, K: 1},               // wrong dimensionality
	}
	for i, req := range cases {
		if status, _, _ := postKNN(t, client, url, "", req); status != http.StatusBadRequest {
			t.Fatalf("case %d (%+v): status %d, want 400", i, req, status)
		}
	}
	if status := func() int {
		resp, err := client.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}(); status != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/knn: status %d, want 405", status)
	}

	// /v1/stats and /healthz answer.
	sresp, err := client.Get(fmt.Sprintf("http://%s/v1/stats", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	var stats statsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if len(stats.QueueDepths) == 0 {
		t.Fatal("/v1/stats reported no queue depths")
	}
	hresp, err := client.Get(fmt.Sprintf("http://%s/healthz", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: status %d", hresp.StatusCode)
	}
}
