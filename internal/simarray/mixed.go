package simarray

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// MixedWorkload interleaves a Poisson stream of insertions with the
// query stream — the paper's target setting is dynamic ("insertions,
// deletions and updates can be intermixed with read-only operations",
// §1, which is why it rules out full reorganization-based declustering).
//
// An insertion is charged its real I/O: the pages its ChooseSubtree
// descent read and the pages it dirtied (leaf, split siblings, parents)
// are read from / written to their disks through the same queues the
// concurrent queries use. Structural changes apply atomically at the
// operation's completion from the perspective of later queries; new
// pages receive placements from the tree's declustering policy exactly
// as during the initial build.
type MixedWorkload struct {
	Queries Workload
	// Inserts are the points added during the run; ObjectIDs are
	// InsertBase + index.
	Inserts    []geom.Point
	InsertBase rtree.ObjectID
	// InsertRate is the Poisson λ for insert arrivals (required when
	// Inserts is non-empty).
	InsertRate float64
}

// InsertOutcome is the timing record of one simulated insertion.
type InsertOutcome struct {
	Index      int
	Arrival    float64
	Completion float64
	Response   float64
	PagesRead  int
	PagesWrite int
}

// MixedResult extends RunResult with the insert stream's outcomes.
type MixedResult struct {
	RunResult
	Inserts            []InsertOutcome
	MeanInsertResponse float64
}

// runInsert drives one insertion: the structural change happens at
// arrival (so the page set is known), then its reads and writes pay
// their way through the disk and bus queues.
func (s *System) runInsert(p geom.Point, id rtree.ObjectID, out *InsertOutcome) {
	out.Arrival = s.sim.Now()
	trace := s.tree.Tree.TraceOp(func() {
		if err := s.tree.InsertPoint(p, id); err != nil {
			panic(fmt.Sprintf("simarray: mixed insert: %v", err))
		}
	})
	out.PagesRead = len(trace.Reads)
	out.PagesWrite = len(trace.Writes)

	// Phase 1: read the descent path (parallel across disks), then
	// phase 2: write back the dirtied pages.
	pending := 0
	var startWrites func()
	finish := func() {
		out.Completion = s.sim.Now()
		out.Response = out.Completion - out.Arrival
	}
	issue := func(ids []rtree.PageID, next func()) {
		if len(ids) == 0 {
			next()
			return
		}
		pending = len(ids)
		for _, pageID := range ids {
			pl, ok := s.tree.Placement(pageID)
			if !ok {
				// Freed during a cascading structural change (possible
				// for writes of pages later dissolved): charge it to
				// disk 0 cylinder 0 as metadata traffic.
				pl.Disk, pl.Cylinder = 0, 0
			}
			// Drive faults gate the query read path only; insert traffic
			// falls back to mirror 0 when the policy finds no live drive.
			m, ok := s.pickMirror(pl.Disk, pl.Cylinder)
			if !ok {
				m = 0
			}
			drv := s.drive[pl.Disk][m]
			svc := drv.ServiceTime(pl.Cylinder, s.rot[pl.Disk])
			s.disks[pl.Disk][m].Submit(svc, func(_, _ float64) {
				s.bus.Submit(s.cfg.BusTime, func(_, _ float64) {
					pending--
					if pending == 0 {
						next()
					}
				})
			})
		}
	}
	startWrites = func() {
		// RAID-1 note: a write must hit every mirror; issue one write
		// job per mirror of each dirtied page.
		if s.cfg.Mirrors == 1 {
			issue(trace.Writes, finish)
			return
		}
		pending = len(trace.Writes) * s.cfg.Mirrors
		if pending == 0 {
			finish()
			return
		}
		for _, pageID := range trace.Writes {
			pl, ok := s.tree.Placement(pageID)
			if !ok {
				pl.Disk, pl.Cylinder = 0, 0
			}
			for m := 0; m < s.cfg.Mirrors; m++ {
				drv := s.drive[pl.Disk][m]
				svc := drv.ServiceTime(pl.Cylinder, s.rot[pl.Disk])
				s.disks[pl.Disk][m].Submit(svc, func(_, _ float64) {
					s.bus.Submit(s.cfg.BusTime, func(_, _ float64) {
						pending--
						if pending == 0 {
							finish()
						}
					})
				})
			}
		}
	}
	issue(trace.Reads, startWrites)
}

// RunMixed executes queries and insertions concurrently and reports
// both streams' response times. Deletions are not interleaved: a
// dissolved page could be freed while a concurrent query still holds a
// reference to it, which a real system prevents with latching that this
// simulator does not model.
func (s *System) RunMixed(w MixedWorkload) (MixedResult, error) {
	if len(w.Inserts) > 0 && w.InsertRate <= 0 {
		return MixedResult{}, errors.New("simarray: mixed workload needs a positive InsertRate")
	}
	outcomes := make([]InsertOutcome, len(w.Inserts))
	arr := rand.New(rand.NewSource(s.cfg.Seed + 777))
	t := 0.0
	for i := range w.Inserts {
		i := i
		outcomes[i] = InsertOutcome{Index: i}
		s.sim.At(t, func() {
			s.runInsert(w.Inserts[i], w.InsertBase+rtree.ObjectID(i), &outcomes[i])
		})
		t += arr.ExpFloat64() / w.InsertRate
	}

	base, err := s.Run(w.Queries)
	if err != nil {
		return MixedResult{}, err
	}
	res := MixedResult{RunResult: base, Inserts: outcomes}
	for i := range outcomes {
		if outcomes[i].Completion == 0 && outcomes[i].PagesRead == 0 {
			return res, fmt.Errorf("simarray: insert %d never completed", i)
		}
		res.MeanInsertResponse += outcomes[i].Response
	}
	if len(outcomes) > 0 {
		res.MeanInsertResponse /= float64(len(outcomes))
	}
	return res, nil
}
