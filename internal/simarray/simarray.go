// Package simarray is the full system simulator of the paper (§4.1,
// Figure 7): a CPU, a shared I/O bus and N disks, each modelled as a
// FCFS queue over the event-driven kernel of package sim. Queries arrive
// in a Poisson stream, run one of the package query algorithms, and the
// simulator measures per-query response times under intra- and
// inter-query parallelism, seek-dependent disk service times, bus
// contention and the paper's CPU cost model.
//
// The flow of one algorithm stage is:
//
//	CPU (process previous pages: 2N+3M·log2 M instructions @ MIPS)
//	  → page requests fan out to the per-disk queues (parallel)
//	  → each completed page crosses the shared bus (constant time)
//	  → when the stage's last page arrives, the next stage begins.
package simarray

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/disk"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/sim"
)

// Config fixes the hardware model. Zero fields take the paper's values
// (Table 1 and Table 2).
type Config struct {
	Disk         disk.Params // per-drive model; zero value = HP C2200A
	MIPS         float64     // CPU speed; default 100 (CPUspeed, Table 1)
	QueryStartup float64     // seconds; default 0.001 (Qstartup, Table 1)
	BusTime      float64     // seconds to move one page over the bus;
	// default = page size / 10 MB/s (SCSI-2)
	Seed int64
	// Mirrors is the number of physical copies of every logical disk:
	// 1 (default) models the paper's RAID-0; 2 models RAID-1 shadowed
	// disks, the paper's "future research" item — a read is served by
	// whichever mirror the MirrorPolicy selects.
	Mirrors int
	// MirrorPolicy selects the mirror for a read: "shortest-queue"
	// (default; falls back to the nearer arm on ties), "nearest-arm",
	// or "roundrobin".
	MirrorPolicy string
	// CPUs is the number of processors sharing the workload (default
	// 1, the paper's machine). More processors model the paper's last
	// future-research item, "the impact of increasing the number of
	// processors (e.g. in a shared-memory multiprocessor architecture)":
	// each query stage runs on the least-loaded CPU.
	CPUs int
	// Faults fail-stops physical drives during the run: pickMirror
	// skips dead drives, and a read with no live replica fails its
	// query with *fault.ErrDataUnavailable instead of a wrong answer.
	Faults []DriveFault
}

// DriveFault fail-stops one physical drive. Faults affect the query
// read path only; insert traffic (RunMixed) is charged to mirror 0
// regardless, since writes must eventually hit every mirror anyway.
type DriveFault struct {
	Disk   int // logical disk
	Mirror int // physical mirror of that disk (0 when Mirrors == 1)
	// AfterIOs is how many page reads the drive serves before it
	// fail-stops; 0 means dead on arrival. A supernode's streamed
	// extra pages count as part of their request's single I/O.
	AfterIOs int
}

func (c *Config) fill() {
	if c.Disk.Cylinders == 0 {
		c.Disk = disk.HPC2200A()
	}
	if c.MIPS == 0 {
		c.MIPS = 100
	}
	if c.QueryStartup == 0 {
		c.QueryStartup = 0.001
	}
	if c.BusTime == 0 {
		c.BusTime = float64(c.Disk.BlockSize) / 10e6
	}
	if c.Mirrors == 0 {
		c.Mirrors = 1
	}
	if c.MirrorPolicy == "" {
		c.MirrorPolicy = "shortest-queue"
	}
	if c.CPUs == 0 {
		c.CPUs = 1
	}
}

// Workload describes a stream of k-NN queries.
type Workload struct {
	Algorithm query.Algorithm
	K         int
	Queries   []geom.Point // one query per arrival
	// ArrivalRate is λ in queries/second for the Poisson stream; if
	// zero, queries are issued back-to-back (each arrives when the
	// previous completes — the single-user model).
	ArrivalRate float64
	Options     query.Options
}

// QueryOutcome is the record of one simulated query.
type QueryOutcome struct {
	Index      int
	Arrival    float64
	Completion float64
	Response   float64
	Stats      *query.Stats
	Results    []query.Neighbor
	// Err is non-nil when the query failed in degraded mode (typically
	// *fault.ErrDataUnavailable: a page had no live replica). A failed
	// query has nil Stats and Results — never a partial answer.
	Err error
}

// DiskReport summarizes one drive after a run.
type DiskReport struct {
	Requests    uint64
	Utilization float64
	MeanWait    float64
}

// RunResult aggregates a workload run. Response-time aggregates cover
// successful queries only; Failed counts the rest.
type RunResult struct {
	Outcomes     []QueryOutcome
	MeanResponse float64
	MaxResponse  float64
	Makespan     float64 // completion time of the last query
	Failed       int     // queries that ended with QueryOutcome.Err
	Disks        []DiskReport
	BusUtil      float64
	CPUUtil      float64
}

// System wires a parallel R*-tree to the simulated hardware. With
// Mirrors > 1 each logical disk is backed by that many physical drives
// holding identical content (RAID-1 shadowing).
type System struct {
	cfg    Config
	tree   *parallel.Tree
	sim    *sim.Simulator
	cpus   []*sim.Station
	bus    *sim.Station
	disks  [][]*sim.Station // [logical disk][mirror]
	drive  [][]*disk.Drive
	rot    []*rand.Rand // per-logical-disk rotational latency streams
	rrNext []int        // round-robin cursor per logical disk
	// failAfter[d][m] is the drive's read budget before it fail-stops
	// (-1 = never); served[d][m] counts reads issued to it so far.
	failAfter [][]int
	served    [][]int
}

// NewSystem builds the hardware around a tree. The number of disks comes
// from the tree's configuration.
func NewSystem(tree *parallel.Tree, cfg Config) (*System, error) {
	cfg.fill()
	if err := cfg.Disk.Validate(); err != nil {
		return nil, err
	}
	if tree.Config().Cylinders > cfg.Disk.Cylinders {
		return nil, fmt.Errorf("simarray: tree placed on %d cylinders but drive has %d",
			tree.Config().Cylinders, cfg.Disk.Cylinders)
	}
	switch cfg.MirrorPolicy {
	case "shortest-queue", "nearest-arm", "roundrobin":
	default:
		return nil, fmt.Errorf("simarray: unknown mirror policy %q", cfg.MirrorPolicy)
	}
	if cfg.Mirrors < 1 {
		return nil, fmt.Errorf("simarray: mirrors must be >= 1, got %d", cfg.Mirrors)
	}
	if cfg.CPUs < 1 {
		return nil, fmt.Errorf("simarray: CPUs must be >= 1, got %d", cfg.CPUs)
	}
	s := &System{cfg: cfg, tree: tree, sim: sim.New()}
	s.cpus = make([]*sim.Station, cfg.CPUs)
	for i := range s.cpus {
		s.cpus[i] = sim.NewStation(s.sim, fmt.Sprintf("cpu%d", i))
	}
	s.bus = sim.NewStation(s.sim, "bus")
	n := tree.NumDisks()
	s.disks = make([][]*sim.Station, n)
	s.drive = make([][]*disk.Drive, n)
	s.rot = make([]*rand.Rand, n)
	s.rrNext = make([]int, n)
	for i := 0; i < n; i++ {
		s.disks[i] = make([]*sim.Station, cfg.Mirrors)
		s.drive[i] = make([]*disk.Drive, cfg.Mirrors)
		for m := 0; m < cfg.Mirrors; m++ {
			s.disks[i][m] = sim.NewStation(s.sim, fmt.Sprintf("disk%d.%d", i, m))
			d, err := disk.NewDrive(i*cfg.Mirrors+m, cfg.Disk)
			if err != nil {
				return nil, err
			}
			s.drive[i][m] = d
		}
		s.rot[i] = rand.New(rand.NewSource(cfg.Seed + int64(i)*7919 + 1))
	}
	s.failAfter = make([][]int, n)
	s.served = make([][]int, n)
	for i := 0; i < n; i++ {
		s.failAfter[i] = make([]int, cfg.Mirrors)
		s.served[i] = make([]int, cfg.Mirrors)
		for m := range s.failAfter[i] {
			s.failAfter[i][m] = -1
		}
	}
	for _, f := range cfg.Faults {
		if f.Disk < 0 || f.Disk >= n || f.Mirror < 0 || f.Mirror >= cfg.Mirrors {
			return nil, fmt.Errorf("simarray: fault targets drive %d.%d outside the %dx%d array",
				f.Disk, f.Mirror, n, cfg.Mirrors)
		}
		s.failAfter[f.Disk][f.Mirror] = f.AfterIOs
	}
	return s, nil
}

// driveDead reports whether a physical drive has fail-stopped.
func (s *System) driveDead(d, m int) bool {
	fa := s.failAfter[d][m]
	return fa >= 0 && s.served[d][m] >= fa
}

// pickMirror selects the physical drive serving a read from logical
// disk d at the given cylinder, per the configured policy. Dead drives
// are skipped; ok is false when no live mirror remains, in which case
// the read cannot be served (RAID-0 data loss, or a fully dead mirror
// set).
func (s *System) pickMirror(d, cylinder int) (m int, ok bool) {
	if s.cfg.Mirrors == 1 {
		return 0, !s.driveDead(d, 0)
	}
	switch s.cfg.MirrorPolicy {
	case "roundrobin":
		// Advance the cursor past dead drives so the live ones still
		// alternate.
		for i := 0; i < s.cfg.Mirrors; i++ {
			m := s.rrNext[d]
			s.rrNext[d] = (m + 1) % s.cfg.Mirrors
			if !s.driveDead(d, m) {
				return m, true
			}
		}
		return 0, false
	case "nearest-arm":
		best, bestDist := -1, -1
		for m, drv := range s.drive[d] {
			if s.driveDead(d, m) {
				continue
			}
			dist := armDist(drv, cylinder)
			if bestDist < 0 || dist < bestDist {
				best, bestDist = m, dist
			}
		}
		if best < 0 {
			return 0, false
		}
		return best, true
	default: // shortest-queue, ties to the nearer arm
		best, bestDist := -1, 0
		bestFree := 0.0
		for m := 0; m < s.cfg.Mirrors; m++ {
			if s.driveDead(d, m) {
				continue
			}
			free := s.disks[d][m].FreeAt()
			dist := armDist(s.drive[d][m], cylinder)
			//lint:allow floatcmp exact free-time tie deliberately broken by the nearer arm
			if best < 0 || free < bestFree || (free == bestFree && dist < bestDist) {
				best, bestFree, bestDist = m, free, dist
			}
		}
		if best < 0 {
			return 0, false
		}
		return best, true
	}
}

func armDist(d *disk.Drive, cylinder int) int {
	dist := d.Arm() - cylinder
	if dist < 0 {
		dist = -dist
	}
	return dist
}

// cpu returns the least-loaded processor (by drain time), modelling a
// shared ready queue on a multiprocessor.
func (s *System) cpu() *sim.Station {
	best := s.cpus[0]
	for _, c := range s.cpus[1:] {
		if c.FreeAt() < best.FreeAt() {
			best = c
		}
	}
	return best
}

// queryProc drives one Execution through the simulated hardware.
type queryProc struct {
	sys     *System
	exec    query.Execution
	out     *QueryOutcome
	pending int
	batch   []*rtree.Node
	done    func()
	// obsv receives FetchDone/StageDone events stamped with the
	// virtual clock; stage and arrivals support request-order emission.
	obsv     obs.QueryObserver
	stage    int
	arrivals []fetchArrival
	// failed stops the query's remaining simulated events once a read
	// had no live replica; late page arrivals are discarded.
	failed bool
}

// fetchArrival records one page's simulated completion for the trace.
type fetchArrival struct {
	req query.PageRequest
	idx int
	at  float64
}

// start begins the query at the current simulated time: the startup cost
// runs on the CPU, then the first stage executes.
func (p *queryProc) start() {
	p.out.Arrival = p.sys.sim.Now()
	p.sys.cpu().Submit(p.sys.cfg.QueryStartup, func(_, _ float64) {
		p.advance(nil)
	})
}

// advance runs one algorithm stage: Step consumes the delivered pages,
// its CPU cost is paid on the CPU station, and then the stage's page
// requests fan out to the disks.
func (p *queryProc) advance(delivered []*rtree.Node) {
	if p.failed {
		return
	}
	sr := p.exec.Step(delivered)
	cpuTime := sr.Instructions / (p.sys.cfg.MIPS * 1e6)
	p.sys.cpu().Submit(cpuTime, func(_, _ float64) {
		if len(sr.Requests) == 0 {
			p.finish()
			return
		}
		p.issue(sr.Requests)
	})
}

// issue sends a stage's page requests to the array. Cached pages cost no
// I/O; physical pages pay disk service (seek + rotation + transfer +
// controller) and then one bus slot.
func (p *queryProc) issue(reqs []query.PageRequest) {
	p.pending = len(reqs)
	p.batch = p.batch[:0]
	for i, r := range reqs {
		i, r := i, r
		node := p.sys.tree.Store().Get(r.Page)
		if r.Cached {
			// Delivered from memory at this instant.
			p.sys.sim.After(0, func() { p.deliver(node, i, r) })
			continue
		}
		m, ok := p.sys.pickMirror(r.Disk, r.Cylinder)
		if !ok {
			p.fail(&fault.ErrDataUnavailable{Disk: r.Disk, Page: r.Page, Last: fault.ErrDiskDead})
			return
		}
		p.sys.served[r.Disk][m]++
		drv := p.sys.drive[r.Disk][m]
		svc := drv.ServiceTime(r.Cylinder, p.sys.rot[r.Disk])
		if r.Pages > 1 {
			// Supernode: the extra pages stream sequentially after the
			// first (one seek + rotation, then contiguous transfers).
			svc += float64(r.Pages-1) * drv.TransferTime
		}
		p.sys.disks[r.Disk][m].Submit(svc, func(_, _ float64) {
			p.sys.bus.Submit(p.sys.cfg.BusTime, func(_, _ float64) {
				p.deliver(node, i, r)
			})
		})
	}
}

// deliver collects one page; when the whole stage has arrived its trace
// events are emitted in request order and the next stage begins.
func (p *queryProc) deliver(n *rtree.Node, idx int, r query.PageRequest) {
	if p.failed {
		return
	}
	if p.obsv != nil {
		p.arrivals = append(p.arrivals, fetchArrival{req: r, idx: idx, at: p.sys.sim.Now()})
	}
	p.batch = append(p.batch, n)
	p.pending--
	if p.pending == 0 {
		if p.obsv != nil {
			sort.Slice(p.arrivals, func(a, b int) bool { return p.arrivals[a].idx < p.arrivals[b].idx })
			for _, ar := range p.arrivals {
				p.obsv.Observe(obs.Event{
					Type: obs.FetchDone, Stage: p.stage,
					Page: int64(ar.req.Page), Disk: ar.req.Disk, Pages: ar.req.Pages,
					Cached: ar.req.Cached, SimTime: ar.at,
				})
			}
			p.obsv.Observe(obs.Event{
				Type: obs.StageDone, Stage: p.stage,
				Batch: len(p.arrivals), SimTime: p.sys.sim.Now(),
			})
			p.arrivals = p.arrivals[:0]
		}
		p.stage++
		stage := make([]*rtree.Node, len(p.batch))
		copy(stage, p.batch)
		p.advance(stage)
	}
}

func (p *queryProc) finish() {
	p.out.Completion = p.sys.sim.Now()
	p.out.Response = p.out.Completion - p.out.Arrival
	p.out.Results = p.exec.Results()
	p.out.Stats = p.exec.Stats()
	if p.done != nil {
		p.done()
	}
}

// fail ends the query with a typed degraded-mode error: no results, no
// stats, never a partial answer. The single-user chain still advances
// so one dead drive does not stall the rest of the workload.
func (p *queryProc) fail(err error) {
	if p.failed {
		return
	}
	p.failed = true
	p.out.Err = err
	p.out.Completion = p.sys.sim.Now()
	p.out.Response = p.out.Completion - p.out.Arrival
	if p.done != nil {
		p.done()
	}
}

// Run executes the workload to completion and reports statistics. The
// paper's experiments run 100 queries and average the response time.
func (s *System) Run(w Workload) (RunResult, error) {
	if w.Algorithm == nil {
		return RunResult{}, errors.New("simarray: workload has no algorithm")
	}
	if w.K <= 0 {
		return RunResult{}, fmt.Errorf("simarray: k must be positive, got %d", w.K)
	}
	if len(w.Queries) == 0 {
		return RunResult{}, errors.New("simarray: workload has no queries")
	}
	outcomes := make([]QueryOutcome, len(w.Queries))
	procs := make([]*queryProc, len(w.Queries))
	for i, q := range w.Queries {
		outcomes[i] = QueryOutcome{Index: i}
		procs[i] = &queryProc{
			sys:  s,
			exec: w.Algorithm.NewExecution(s.tree, q, w.K, w.Options),
			out:  &outcomes[i],
			obsv: w.Options.Observer,
		}
	}

	if w.ArrivalRate > 0 {
		// Poisson arrivals: exponential interarrival times.
		arr := rand.New(rand.NewSource(s.cfg.Seed + 100003))
		t := 0.0
		for i := range procs {
			p := procs[i]
			s.sim.At(t, p.start)
			t += arr.ExpFloat64() / w.ArrivalRate
		}
	} else {
		// Single-user: next query starts when the previous finishes.
		for i := 0; i < len(procs)-1; i++ {
			next := procs[i+1]
			procs[i].done = next.start
		}
		s.sim.At(0, procs[0].start)
	}

	s.sim.Run()

	var res RunResult
	res.Outcomes = outcomes
	succeeded := 0
	for i := range outcomes {
		o := &outcomes[i]
		if o.Err != nil {
			res.Failed++
			if o.Completion > res.Makespan {
				res.Makespan = o.Completion
			}
			continue
		}
		if o.Stats == nil {
			return res, fmt.Errorf("simarray: query %d never completed", i)
		}
		succeeded++
		res.MeanResponse += o.Response
		if o.Response > res.MaxResponse {
			res.MaxResponse = o.Response
		}
		if o.Completion > res.Makespan {
			res.Makespan = o.Completion
		}
	}
	if succeeded > 0 {
		res.MeanResponse /= float64(succeeded)
	}

	horizon := res.Makespan
	if horizon <= 0 {
		horizon = math.SmallestNonzeroFloat64
	}
	// One report per physical drive, mirrors flattened after their
	// logical disk.
	res.Disks = make([]DiskReport, 0, len(s.disks)*s.cfg.Mirrors)
	for _, mirrors := range s.disks {
		for _, st := range mirrors {
			stats := st.Stats()
			res.Disks = append(res.Disks, DiskReport{
				Requests:    stats.Jobs,
				Utilization: stats.Utilization(horizon),
				MeanWait:    stats.MeanWait(),
			})
		}
	}
	res.BusUtil = s.bus.Stats().Utilization(horizon)
	var cpuBusy float64
	for _, c := range s.cpus {
		cpuBusy += c.Stats().Utilization(horizon)
	}
	res.CPUUtil = cpuBusy / float64(len(s.cpus))
	return res, nil
}

// MeanResponseOf is a convenience that builds a system and runs a
// workload in one call, returning the mean response time.
func MeanResponseOf(tree *parallel.Tree, cfg Config, w Workload) (float64, error) {
	sys, err := NewSystem(tree, cfg)
	if err != nil {
		return 0, err
	}
	res, err := sys.Run(w)
	if err != nil {
		return 0, err
	}
	return res.MeanResponse, nil
}
