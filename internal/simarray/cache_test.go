package simarray

import (
	"testing"

	"repro/internal/bufferpool"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rtree"
)

func TestSharedCacheReducesDiskIO(t *testing.T) {
	tree := buildTree(t, 4000, 2, 5, 41)
	// A hot working set: the same 5 query points repeated 5×.
	hot := dataset.SampleQueries(dataset.Gaussian(4000, 2, 41), 5, 42)
	workQueries := append([]geomPoint(nil), hot...)
	for i := 0; i < 4; i++ {
		workQueries = append(workQueries, hot...)
	}

	run := func(cachePages int) (float64, int) {
		opts := query.Options{}
		if cachePages > 0 {
			opts.SharedCache = bufferpool.New[rtree.PageID, struct{}](cachePages)
		}
		sys, err := NewSystem(tree, Config{Seed: 41})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(Workload{
			Algorithm: query.CRSS{}, K: 10, Queries: workQueries,
			ArrivalRate: 10, Options: opts,
		})
		if err != nil {
			t.Fatal(err)
		}
		accesses := 0
		for _, o := range res.Outcomes {
			accesses += o.Stats.DiskAccesses
		}
		return res.MeanResponse, accesses
	}

	respNo, accNo := run(0)
	respYes, accYes := run(512)
	if accYes >= accNo {
		t.Errorf("shared cache did not cut disk accesses: %d vs %d", accYes, accNo)
	}
	if respYes >= respNo {
		t.Errorf("shared cache did not cut response time: %.5f vs %.5f", respYes, respNo)
	}
	// With a cache covering the whole working set, repeats should be
	// close to free: expect a large reduction.
	if float64(accYes) > 0.5*float64(accNo) {
		t.Errorf("cache hit rate too low: %d of %d accesses remain", accYes, accNo)
	}
}

type geomPoint = geom.Point

func TestSharedCacheResultsUnchanged(t *testing.T) {
	tree := buildTree(t, 2000, 2, 4, 43)
	qs := dataset.SampleQueries(dataset.Gaussian(2000, 2, 43), 10, 44)
	base, err := NewSystem(tree, Config{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	resA, err := base.Run(Workload{Algorithm: query.CRSS{}, K: 8, Queries: qs, ArrivalRate: 5})
	if err != nil {
		t.Fatal(err)
	}
	cached, err := NewSystem(tree, Config{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := cached.Run(Workload{
		Algorithm: query.CRSS{}, K: 8, Queries: qs, ArrivalRate: 5,
		Options: query.Options{SharedCache: bufferpool.New[rtree.PageID, struct{}](256)},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range resA.Outcomes {
		a, b := resA.Outcomes[i].Results, resB.Outcomes[i].Results
		if len(a) != len(b) {
			t.Fatalf("query %d: result count differs with cache", i)
		}
		for j := range a {
			if a[j].DistSq != b[j].DistSq {
				t.Fatalf("query %d rank %d: distance differs with cache", i, j)
			}
		}
	}
}
