package simarray

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/query"
)

// --- pickMirror policy coverage -------------------------------------

// newMirrorSystem builds a small system purely to poke pickMirror.
func newMirrorSystem(t *testing.T, mirrors int, policy string, faults []DriveFault) *System {
	t.Helper()
	tree := buildTree(t, 500, 2, 2, 31)
	sys, err := NewSystem(tree, Config{Seed: 1, Mirrors: mirrors, MirrorPolicy: policy, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestPickMirrorRoundRobinAdvances: the cursor alternates 0,1,2,0,...
// per logical disk and disks keep independent cursors.
func TestPickMirrorRoundRobinAdvances(t *testing.T) {
	sys := newMirrorSystem(t, 3, "roundrobin", nil)
	for i := 0; i < 7; i++ {
		m, ok := sys.pickMirror(0, 100)
		if !ok || m != i%3 {
			t.Fatalf("pick %d on disk 0: (%d, %v), want (%d, true)", i, m, ok, i%3)
		}
	}
	// Disk 1's cursor is untouched by disk 0's picks.
	if m, ok := sys.pickMirror(1, 100); !ok || m != 0 {
		t.Fatalf("disk 1 first pick: (%d, %v), want (0, true)", m, ok)
	}
}

// TestPickMirrorNearestArm: the mirror whose arm is closest to the
// target cylinder wins; exact distance ties go to the lower index.
func TestPickMirrorNearestArm(t *testing.T) {
	sys := newMirrorSystem(t, 2, "nearest-arm", nil)

	// All arms start at cylinder 0: a tie, resolved to mirror 0.
	if m, ok := sys.pickMirror(0, 50); !ok || m != 0 {
		t.Fatalf("tie pick: (%d, %v), want (0, true)", m, ok)
	}

	// Move mirror 1's arm next to the target; it must now win.
	sys.drive[0][1].ServiceTime(120, nil)
	if m, ok := sys.pickMirror(0, 100); !ok || m != 1 {
		t.Fatalf("nearest pick: (%d, %v), want (1, true)", m, ok)
	}

	// Symmetric distances (arm 0 at 0, arm 1 at 120, target 60) tie
	// again — lower index wins.
	if m, ok := sys.pickMirror(0, 60); !ok || m != 0 {
		t.Fatalf("symmetric tie: (%d, %v), want (0, true)", m, ok)
	}
}

// TestPickMirrorShortestQueue: the less-loaded mirror wins; an exact
// free-time tie is broken by the nearer arm.
func TestPickMirrorShortestQueue(t *testing.T) {
	sys := newMirrorSystem(t, 2, "shortest-queue", nil)

	// Load mirror 0 with a pending job; mirror 1 is idle and must win.
	sys.disks[0][0].Submit(0.5, nil)
	if m, ok := sys.pickMirror(0, 100); !ok || m != 1 {
		t.Fatalf("loaded-mirror pick: (%d, %v), want (1, true)", m, ok)
	}

	// Equal queues (both idle on disk 1), arms at 0 and 200: the tie
	// goes to the arm nearer the target cylinder.
	sys.drive[1][1].ServiceTime(200, nil)
	if m, ok := sys.pickMirror(1, 190); !ok || m != 1 {
		t.Fatalf("tie near arm 1: (%d, %v), want (1, true)", m, ok)
	}
	if m, ok := sys.pickMirror(1, 10); !ok || m != 0 {
		t.Fatalf("tie near arm 0: (%d, %v), want (0, true)", m, ok)
	}
}

// TestPickMirrorSkipsDeadDrives: every policy must route around a
// fail-stopped drive, and report !ok when no live mirror remains.
func TestPickMirrorSkipsDeadDrives(t *testing.T) {
	for _, policy := range []string{"roundrobin", "nearest-arm", "shortest-queue"} {
		t.Run(policy, func(t *testing.T) {
			sys := newMirrorSystem(t, 2, policy, []DriveFault{{Disk: 0, Mirror: 0}})
			for i := 0; i < 4; i++ {
				if m, ok := sys.pickMirror(0, 100); !ok || m != 1 {
					t.Fatalf("pick %d: (%d, %v), want the live mirror 1", i, m, ok)
				}
			}
			// The untouched logical disk is unaffected by disk 0's fault.
			seen := map[int]bool{}
			for i := 0; i < 8; i++ {
				m, ok := sys.pickMirror(1, 100)
				if !ok {
					t.Fatal("healthy disk reported no live mirror")
				}
				seen[m] = true
			}
			// Only round-robin guarantees alternation; ties on the idle
			// deterministic policies legitimately stick to mirror 0.
			if policy == "roundrobin" && (!seen[0] || !seen[1]) {
				t.Fatalf("healthy disk used mirrors %v, want both", seen)
			}
		})
	}

	// Both mirrors dead: no pick is possible.
	sys := newMirrorSystem(t, 2, "shortest-queue",
		[]DriveFault{{Disk: 0, Mirror: 0}, {Disk: 0, Mirror: 1}})
	if _, ok := sys.pickMirror(0, 100); ok {
		t.Fatal("picked a mirror on a fully dead disk")
	}
}

// TestPickMirrorRAID0Dead: with one copy per disk, a dead drive means
// the read cannot be served at all.
func TestPickMirrorRAID0Dead(t *testing.T) {
	sys := newMirrorSystem(t, 1, "", []DriveFault{{Disk: 1, Mirror: 0}})
	if m, ok := sys.pickMirror(0, 50); !ok || m != 0 {
		t.Fatalf("healthy RAID-0 disk: (%d, %v), want (0, true)", m, ok)
	}
	if _, ok := sys.pickMirror(1, 50); ok {
		t.Fatal("picked a mirror on a dead RAID-0 disk")
	}
}

// --- fail-stop end-to-end -------------------------------------------

// TestSimMirroredFailStopMatchesDriver: one dead physical drive behind
// RAID-1 must not change a single answer — the simulator serves every
// read from the surviving mirror.
func TestSimMirroredFailStopMatchesDriver(t *testing.T) {
	tree := buildTree(t, 3000, 2, 4, 7)
	qs := dataset.SampleQueries(dataset.Gaussian(3000, 2, 7), 20, 9)
	drv := query.Driver{Tree: tree}

	for _, f := range []DriveFault{
		{Disk: 1, Mirror: 0, AfterIOs: 0}, // dead on arrival
		{Disk: 2, Mirror: 1, AfterIOs: 5}, // dies mid-run
	} {
		sys, err := NewSystem(tree, Config{Seed: 7, Mirrors: 2, Faults: []DriveFault{f}})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(Workload{Algorithm: query.CRSS{}, K: 10, Queries: qs, ArrivalRate: 50})
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed != 0 {
			t.Fatalf("fault %+v: %d queries failed with a live mirror", f, res.Failed)
		}
		for i, q := range qs {
			want, _ := drv.Run(query.CRSS{}, q, 10, query.Options{})
			o := res.Outcomes[i]
			if o.Err != nil {
				t.Fatalf("fault %+v: query %d: %v", f, i, o.Err)
			}
			if len(o.Results) != len(want) {
				t.Fatalf("fault %+v: query %d: %d results, want %d", f, i, len(o.Results), len(want))
			}
			for j := range want {
				if o.Results[j].Object != want[j].Object || o.Results[j].DistSq != want[j].DistSq {
					t.Fatalf("fault %+v: query %d result %d diverged", f, i, j)
				}
			}
		}
	}
}

// TestSimRAID0DeadDiskFailsTyped: a dead disk without mirrors fails its
// queries with *fault.ErrDataUnavailable — never a wrong or partial
// answer — and the rest of the workload still completes and matches
// the Driver.
func TestSimRAID0DeadDiskFailsTyped(t *testing.T) {
	tree := buildTree(t, 3000, 2, 8, 7)
	qs := dataset.SampleQueries(dataset.Gaussian(3000, 2, 7), 30, 11)
	drv := query.Driver{Tree: tree}

	rootPl, ok := tree.Placement(tree.Tree.Root())
	if !ok {
		t.Fatal("root has no placement")
	}
	dead := (rootPl.Disk + 1) % 8

	for _, arrival := range []float64{0, 50} { // single-user chain and Poisson stream
		t.Run(fmt.Sprintf("rate=%v", arrival), func(t *testing.T) {
			sys, err := NewSystem(tree, Config{Seed: 7, Faults: []DriveFault{{Disk: dead, Mirror: 0}}})
			if err != nil {
				t.Fatal(err)
			}
			res, err := sys.Run(Workload{Algorithm: query.CRSS{}, K: 3, Queries: qs, ArrivalRate: arrival})
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed == 0 {
				t.Fatal("no query failed with a dead RAID-0 disk")
			}
			if res.Failed == len(qs) {
				t.Fatal("every query failed; dead-disk split is vacuous")
			}
			for i, q := range qs {
				o := res.Outcomes[i]
				if o.Err != nil {
					var dataErr *fault.ErrDataUnavailable
					if !errors.As(o.Err, &dataErr) {
						t.Fatalf("query %d: err = %v, want *fault.ErrDataUnavailable", i, o.Err)
					}
					if dataErr.Disk != dead {
						t.Fatalf("query %d: error names disk %d, dead disk is %d", i, dataErr.Disk, dead)
					}
					if o.Results != nil || o.Stats != nil {
						t.Fatalf("query %d carries partial results alongside its error", i)
					}
					continue
				}
				want, _ := drv.Run(query.CRSS{}, q, 3, query.Options{})
				if len(o.Results) != len(want) {
					t.Fatalf("query %d: %d results, want %d", i, len(o.Results), len(want))
				}
				for j := range want {
					if o.Results[j].Object != want[j].Object || o.Results[j].DistSq != want[j].DistSq {
						t.Fatalf("query %d result %d diverged", i, j)
					}
				}
			}
		})
	}
}

// TestSimFaultValidation: faults must target drives inside the array.
func TestSimFaultValidation(t *testing.T) {
	tree := buildTree(t, 500, 2, 2, 31)
	for _, f := range []DriveFault{
		{Disk: 2, Mirror: 0},
		{Disk: -1, Mirror: 0},
		{Disk: 0, Mirror: 1}, // Mirrors defaults to 1
	} {
		if _, err := NewSystem(tree, Config{Seed: 1, Faults: []DriveFault{f}}); err == nil {
			t.Errorf("accepted out-of-array fault %+v", f)
		}
	}
}
