package simarray

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/query"
)

func TestMixedWorkloadCompletes(t *testing.T) {
	tree := buildTree(t, 3000, 2, 5, 51)
	sys, err := NewSystem(tree, Config{Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	base := dataset.Gaussian(3000, 2, 51)
	qs := dataset.SampleQueries(base, 30, 52)
	inserts := dataset.Gaussian(200, 2, 53)

	before := tree.Len()
	res, err := sys.RunMixed(MixedWorkload{
		Queries: Workload{
			Algorithm: query.CRSS{}, K: 10, Queries: qs, ArrivalRate: 10,
		},
		Inserts:    inserts,
		InsertBase: 1 << 20,
		InsertRate: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Len() != before+200 {
		t.Errorf("tree size %d, want %d", tree.Len(), before+200)
	}
	if err := tree.Tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := tree.CheckPlacements(); err != nil {
		t.Fatal(err)
	}
	if len(res.Inserts) != 200 {
		t.Fatalf("%d insert outcomes", len(res.Inserts))
	}
	if res.MeanInsertResponse <= 0 {
		t.Error("non-positive insert response")
	}
	for _, in := range res.Inserts {
		if in.Response < 0 || in.PagesRead == 0 || in.PagesWrite == 0 {
			t.Fatalf("insert %d: bad outcome %+v", in.Index, in)
		}
	}
	// Queries all completed with answers despite concurrent inserts.
	for _, o := range res.Outcomes {
		if len(o.Results) != 10 {
			t.Fatalf("query %d returned %d results", o.Index, len(o.Results))
		}
	}
}

func TestMixedNeedsInsertRate(t *testing.T) {
	tree := buildTree(t, 500, 2, 2, 55)
	sys, err := NewSystem(tree, Config{Seed: 55})
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.RunMixed(MixedWorkload{
		Queries: Workload{Algorithm: query.CRSS{}, K: 1, Queries: dataset.Uniform(1, 2, 1)},
		Inserts: dataset.Uniform(5, 2, 2),
	})
	if err == nil {
		t.Error("accepted zero insert rate")
	}
}

func TestMixedWorkloadSlowsQueries(t *testing.T) {
	// Update traffic competes for the same disks: queries must get
	// slower when a heavy insert stream runs alongside.
	tree1 := buildTree(t, 5000, 2, 4, 57)
	tree2 := buildTree(t, 5000, 2, 4, 57)
	qs := dataset.SampleQueries(dataset.Gaussian(5000, 2, 57), 40, 58)

	sysQuiet, err := NewSystem(tree1, Config{Seed: 57})
	if err != nil {
		t.Fatal(err)
	}
	quiet, err := sysQuiet.Run(Workload{Algorithm: query.CRSS{}, K: 10, Queries: qs, ArrivalRate: 8})
	if err != nil {
		t.Fatal(err)
	}

	sysBusy, err := NewSystem(tree2, Config{Seed: 57})
	if err != nil {
		t.Fatal(err)
	}
	busy, err := sysBusy.RunMixed(MixedWorkload{
		Queries:    Workload{Algorithm: query.CRSS{}, K: 10, Queries: qs, ArrivalRate: 8},
		Inserts:    dataset.Gaussian(600, 2, 59),
		InsertBase: 1 << 20,
		InsertRate: 120,
	})
	if err != nil {
		t.Fatal(err)
	}
	if busy.MeanResponse <= quiet.MeanResponse {
		t.Errorf("insert stream did not slow queries: %.5f vs %.5f",
			busy.MeanResponse, quiet.MeanResponse)
	}
}

func TestMixedWithMirrorsWritesAllCopies(t *testing.T) {
	tree := buildTree(t, 1500, 2, 3, 61)
	sys, err := NewSystem(tree, Config{Seed: 61, Mirrors: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunMixed(MixedWorkload{
		Queries:    Workload{Algorithm: query.CRSS{}, K: 5, Queries: dataset.SampleQueries(dataset.Gaussian(1500, 2, 61), 5, 62), ArrivalRate: 5},
		Inserts:    dataset.Gaussian(50, 2, 63),
		InsertBase: 1 << 20,
		InsertRate: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Mirrored writes mean total physical jobs exceed the read-only
	// count: every write hits both copies.
	var writes int
	for _, in := range res.Inserts {
		writes += in.PagesWrite
	}
	if writes == 0 {
		t.Fatal("no writes recorded")
	}
}
