package simarray

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/query"
)

func TestMultiCPUValidation(t *testing.T) {
	tree := buildTree(t, 500, 2, 2, 71)
	if _, err := NewSystem(tree, Config{Seed: 1, CPUs: -2}); err == nil {
		t.Error("accepted negative CPU count")
	}
}

func TestMultiCPUNeverSlower(t *testing.T) {
	// Under a CPU-visible load (many entries scanned per stage at a
	// high arrival rate), more processors must not hurt and should
	// help at least slightly.
	tree := buildTree(t, 6000, 2, 5, 73)
	qs := dataset.SampleQueries(dataset.Gaussian(6000, 2, 73), 60, 74)
	resp := func(cpus int) float64 {
		sys, err := NewSystem(tree, Config{Seed: 73, CPUs: cpus, MIPS: 2}) // slow CPU exposes contention
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(Workload{Algorithm: query.FPSS{}, K: 50, Queries: qs, ArrivalRate: 30})
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanResponse
	}
	one := resp(1)
	four := resp(4)
	if four > one*1.001 {
		t.Errorf("4 CPUs slower than 1: %.5f vs %.5f", four, one)
	}
	if four >= one {
		t.Logf("note: 4 CPUs %.5f vs 1 CPU %.5f (CPU not the bottleneck)", four, one)
	}
}

func TestMultiCPUDeterministic(t *testing.T) {
	tree := buildTree(t, 2000, 2, 4, 75)
	qs := dataset.SampleQueries(dataset.Gaussian(2000, 2, 75), 20, 76)
	run := func() float64 {
		sys, err := NewSystem(tree, Config{Seed: 75, CPUs: 3})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(Workload{Algorithm: query.CRSS{}, K: 10, Queries: qs, ArrivalRate: 10})
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanResponse
	}
	if run() != run() {
		t.Error("multi-CPU runs not deterministic")
	}
}
