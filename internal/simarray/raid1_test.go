package simarray

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/query"
)

func TestMirrorValidation(t *testing.T) {
	tree := buildTree(t, 500, 2, 2, 31)
	if _, err := NewSystem(tree, Config{Seed: 1, Mirrors: -1}); err == nil {
		t.Error("accepted negative mirrors")
	}
	if _, err := NewSystem(tree, Config{Seed: 1, MirrorPolicy: "bogus"}); err == nil {
		t.Error("accepted unknown mirror policy")
	}
}

func TestRAID1ImprovesHeavyLoad(t *testing.T) {
	// Shadowed disks serve reads from either mirror: under a heavy read
	// workload the mean response time must improve over RAID-0 with the
	// same logical layout.
	tree := buildTree(t, 6000, 2, 5, 33)
	qs := dataset.SampleQueries(dataset.Gaussian(6000, 2, 33), 60, 34)
	respWith := func(mirrors int) float64 {
		sys, err := NewSystem(tree, Config{Seed: 33, Mirrors: mirrors})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(Workload{Algorithm: query.CRSS{}, K: 20, Queries: qs, ArrivalRate: 40})
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanResponse
	}
	raid0 := respWith(1)
	raid1 := respWith(2)
	if raid1 >= raid0 {
		t.Errorf("RAID-1 %.4f not faster than RAID-0 %.4f under heavy load", raid1, raid0)
	}
}

func TestRAID1ReportsAllPhysicalDrives(t *testing.T) {
	tree := buildTree(t, 1500, 2, 4, 35)
	sys, err := NewSystem(tree, Config{Seed: 35, Mirrors: 3})
	if err != nil {
		t.Fatal(err)
	}
	qs := dataset.SampleQueries(dataset.Gaussian(1500, 2, 35), 15, 36)
	res, err := sys.Run(Workload{Algorithm: query.CRSS{}, K: 5, Queries: qs, ArrivalRate: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Disks) != 4*3 {
		t.Fatalf("%d drive reports, want 12", len(res.Disks))
	}
	// Conservation still holds across mirrors.
	var served uint64
	for _, d := range res.Disks {
		served += d.Requests
	}
	var issued uint64
	for _, o := range res.Outcomes {
		issued += uint64(o.Stats.DiskAccesses)
	}
	if served != issued {
		t.Errorf("mirrored drives served %d, queries issued %d", served, issued)
	}
}

func TestMirrorPoliciesAllComplete(t *testing.T) {
	tree := buildTree(t, 2000, 2, 3, 37)
	qs := dataset.SampleQueries(dataset.Gaussian(2000, 2, 37), 20, 38)
	for _, pol := range []string{"shortest-queue", "nearest-arm", "roundrobin"} {
		sys, err := NewSystem(tree, Config{Seed: 37, Mirrors: 2, MirrorPolicy: pol})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(Workload{Algorithm: query.FPSS{}, K: 10, Queries: qs, ArrivalRate: 15})
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if res.MeanResponse <= 0 {
			t.Errorf("%s: non-positive response", pol)
		}
	}
}

func TestRoundRobinMirrorsBalance(t *testing.T) {
	tree := buildTree(t, 3000, 2, 2, 39)
	sys, err := NewSystem(tree, Config{Seed: 39, Mirrors: 2, MirrorPolicy: "roundrobin"})
	if err != nil {
		t.Fatal(err)
	}
	qs := dataset.SampleQueries(dataset.Gaussian(3000, 2, 39), 40, 40)
	res, err := sys.Run(Workload{Algorithm: query.CRSS{}, K: 10, Queries: qs, ArrivalRate: 20})
	if err != nil {
		t.Fatal(err)
	}
	// Per logical disk, the two mirrors must split requests within 1.
	for d := 0; d < 2; d++ {
		a := res.Disks[d*2].Requests
		b := res.Disks[d*2+1].Requests
		diff := int64(a) - int64(b)
		if diff < -1 || diff > 1 {
			t.Errorf("disk %d mirrors unbalanced: %d vs %d", d, a, b)
		}
	}
}
