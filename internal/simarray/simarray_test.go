package simarray

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/decluster"
	"repro/internal/disk"
	"repro/internal/parallel"
	"repro/internal/query"
)

func buildTree(t testing.TB, n, dim, disks int, seed int64) *parallel.Tree {
	t.Helper()
	pt, err := parallel.New(parallel.Config{
		Dim:       dim,
		NumDisks:  disks,
		Cylinders: disk.HPC2200A().Cylinders,
		Policy:    decluster.ProximityIndex{},
		Seed:      seed,
		// Small pages keep trees deep enough to be interesting in tests.
		MaxEntries: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pt.BuildPoints(dataset.Gaussian(n, dim, seed)); err != nil {
		t.Fatal(err)
	}
	return pt
}

func TestSingleQueryCompletes(t *testing.T) {
	tree := buildTree(t, 2000, 2, 5, 1)
	sys, err := NewSystem(tree, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	qs := dataset.SampleQueries(dataset.Gaussian(2000, 2, 1), 1, 2)
	res, err := sys.Run(Workload{Algorithm: query.CRSS{}, K: 10, Queries: qs})
	if err != nil {
		t.Fatal(err)
	}
	o := res.Outcomes[0]
	if len(o.Results) != 10 {
		t.Fatalf("query returned %d results", len(o.Results))
	}
	if o.Response <= 0 {
		t.Error("non-positive response time")
	}
	// Response must at least cover: startup + one disk access + bus.
	min := 0.001 + 0.0001
	if o.Response < min {
		t.Errorf("response %.6f below physical floor %.6f", o.Response, min)
	}
	// And the response must be at least #batches * (min disk service),
	// since stages are strictly sequential.
	p := disk.HPC2200A()
	minSvc := p.TransferTime + p.ControllerOverhead
	if o.Response < float64(o.Stats.Batches)*minSvc {
		t.Errorf("response %.6f < batches %d × min service %.6f",
			o.Response, o.Stats.Batches, minSvc)
	}
}

func TestAllQueriesComplete(t *testing.T) {
	tree := buildTree(t, 3000, 2, 8, 3)
	sys, err := NewSystem(tree, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	qs := dataset.SampleQueries(dataset.Gaussian(3000, 2, 3), 40, 4)
	res, err := sys.Run(Workload{Algorithm: query.CRSS{}, K: 10, Queries: qs, ArrivalRate: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 40 {
		t.Fatalf("%d outcomes", len(res.Outcomes))
	}
	var totalAccesses uint64
	for _, o := range res.Outcomes {
		if o.Completion < o.Arrival {
			t.Error("completion before arrival")
		}
		totalAccesses += uint64(o.Stats.DiskAccesses)
	}
	// Conservation: disk jobs served == disk accesses issued.
	var served uint64
	for _, d := range res.Disks {
		served += d.Requests
	}
	if served != totalAccesses {
		t.Errorf("disks served %d jobs, queries issued %d", served, totalAccesses)
	}
	if res.MeanResponse <= 0 || res.MaxResponse < res.MeanResponse {
		t.Errorf("mean %.4f max %.4f inconsistent", res.MeanResponse, res.MaxResponse)
	}
}

func TestResponseGrowsWithLoad(t *testing.T) {
	tree := buildTree(t, 5000, 2, 5, 5)
	qs := dataset.SampleQueries(dataset.Gaussian(5000, 2, 5), 60, 6)
	run := func(lambda float64) float64 {
		mean, err := MeanResponseOf(tree, Config{Seed: 5}, Workload{
			Algorithm: query.CRSS{}, K: 10, Queries: qs, ArrivalRate: lambda,
		})
		if err != nil {
			t.Fatal(err)
		}
		return mean
	}
	light := run(1)
	heavy := run(200)
	if heavy <= light {
		t.Errorf("mean response did not grow with load: λ=1 → %.4f, λ=200 → %.4f", light, heavy)
	}
}

func TestBBSSSlowerThanCRSSOnSingleQuery(t *testing.T) {
	// BBSS fetches pages strictly sequentially, CRSS in parallel
	// batches; on the same tree CRSS must win on mean response in the
	// multi-batch regime.
	tree := buildTree(t, 8000, 2, 10, 7)
	qs := dataset.SampleQueries(dataset.Gaussian(8000, 2, 7), 30, 8)
	respOf := func(alg query.Algorithm) float64 {
		mean, err := MeanResponseOf(tree, Config{Seed: 7}, Workload{
			Algorithm: alg, K: 100, Queries: qs, ArrivalRate: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return mean
	}
	bbss := respOf(query.BBSS{})
	crss := respOf(query.CRSS{})
	if crss >= bbss {
		t.Errorf("CRSS %.4f not faster than BBSS %.4f", crss, bbss)
	}
}

func TestDeterministicRuns(t *testing.T) {
	tree := buildTree(t, 2000, 2, 4, 9)
	qs := dataset.SampleQueries(dataset.Gaussian(2000, 2, 9), 20, 10)
	run := func() RunResult {
		res, err := func() (RunResult, error) {
			sys, err := NewSystem(tree, Config{Seed: 9})
			if err != nil {
				return RunResult{}, err
			}
			return sys.Run(Workload{Algorithm: query.FPSS{}, K: 5, Queries: qs, ArrivalRate: 10})
		}()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.MeanResponse != b.MeanResponse || a.Makespan != b.Makespan {
		t.Errorf("runs diverge: %.9f vs %.9f", a.MeanResponse, b.MeanResponse)
	}
	for i := range a.Outcomes {
		if a.Outcomes[i].Response != b.Outcomes[i].Response {
			t.Fatalf("query %d response differs", i)
		}
	}
}

func TestSingleUserChaining(t *testing.T) {
	tree := buildTree(t, 1500, 2, 4, 11)
	sys, err := NewSystem(tree, Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	qs := dataset.SampleQueries(dataset.Gaussian(1500, 2, 11), 5, 12)
	res, err := sys.Run(Workload{Algorithm: query.CRSS{}, K: 3, Queries: qs}) // no arrival rate
	if err != nil {
		t.Fatal(err)
	}
	// Queries must not overlap: each arrival equals the previous
	// completion.
	for i := 1; i < len(res.Outcomes); i++ {
		if math.Abs(res.Outcomes[i].Arrival-res.Outcomes[i-1].Completion) > 1e-12 {
			t.Errorf("query %d arrived at %.6f, previous completed %.6f",
				i, res.Outcomes[i].Arrival, res.Outcomes[i-1].Completion)
		}
	}
}

func TestWorkloadValidation(t *testing.T) {
	tree := buildTree(t, 500, 2, 2, 13)
	sys, err := NewSystem(tree, Config{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(Workload{K: 1, Queries: dataset.Uniform(1, 2, 1)}); err == nil {
		t.Error("accepted nil algorithm")
	}
	if _, err := sys.Run(Workload{Algorithm: query.CRSS{}, K: 0, Queries: dataset.Uniform(1, 2, 1)}); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := sys.Run(Workload{Algorithm: query.CRSS{}, K: 1}); err == nil {
		t.Error("accepted empty query list")
	}
}

func TestUtilizationBounds(t *testing.T) {
	tree := buildTree(t, 3000, 2, 6, 15)
	sys, err := NewSystem(tree, Config{Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	qs := dataset.SampleQueries(dataset.Gaussian(3000, 2, 15), 50, 16)
	res, err := sys.Run(Workload{Algorithm: query.FPSS{}, K: 20, Queries: qs, ArrivalRate: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.BusUtil < 0 || res.BusUtil > 1 || res.CPUUtil < 0 || res.CPUUtil > 1 {
		t.Errorf("bus %.3f cpu %.3f out of [0,1]", res.BusUtil, res.CPUUtil)
	}
	for i, d := range res.Disks {
		if d.Utilization < 0 || d.Utilization > 1 {
			t.Errorf("disk %d utilization %.3f", i, d.Utilization)
		}
	}
}

func TestCachedLevelsShortenResponse(t *testing.T) {
	tree := buildTree(t, 6000, 2, 5, 17)
	qs := dataset.SampleQueries(dataset.Gaussian(6000, 2, 17), 25, 18)
	respOf := func(cached int) float64 {
		mean, err := MeanResponseOf(tree, Config{Seed: 17}, Workload{
			Algorithm: query.CRSS{}, K: 10, Queries: qs, ArrivalRate: 10,
			Options: query.Options{CachedLevels: cached},
		})
		if err != nil {
			t.Fatal(err)
		}
		return mean
	}
	uncached := respOf(0)
	cached := respOf(2)
	if cached >= uncached {
		t.Errorf("caching 2 levels did not reduce response: %.5f vs %.5f", cached, uncached)
	}
}
