package simarray

import (
	"testing"

	"repro/internal/bufferpool"
	"repro/internal/dataset"
	"repro/internal/decluster"
	"repro/internal/disk"
	"repro/internal/parallel"
	"repro/internal/query"
	"repro/internal/rtree"
)

// TestKitchenSink combines every extension at once: an SR-tree bulk
// packed over mirrored disks with multiple CPUs, a shared page cache,
// level caching, and a mixed insert+query workload. Everything must
// complete, conserve I/O, and leave the tree structurally sound.
func TestKitchenSink(t *testing.T) {
	pts := dataset.Clustered(8000, 6, 12, 91)
	tree, err := parallel.New(parallel.Config{
		Dim:        6,
		NumDisks:   6,
		Cylinders:  disk.HPC2200A().Cylinders,
		UseSpheres: true,
		Policy:     decluster.ProximityIndex{},
		Seed:       91,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.BuildPointsPacked(pts); err != nil {
		t.Fatal(err)
	}
	if err := tree.Tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	sys, err := NewSystem(tree, Config{
		Seed:         91,
		Mirrors:      2,
		MirrorPolicy: "shortest-queue",
		CPUs:         2,
	})
	if err != nil {
		t.Fatal(err)
	}

	cache := bufferpool.New[rtree.PageID, struct{}](256)
	res, err := sys.RunMixed(MixedWorkload{
		Queries: Workload{
			Algorithm:   query.CRSS{},
			K:           15,
			Queries:     dataset.SampleQueries(pts, 40, 92),
			ArrivalRate: 8,
			Options:     query.Options{CachedLevels: 1, SharedCache: cache},
		},
		Inserts:    dataset.Clustered(300, 6, 12, 93),
		InsertBase: 1 << 20,
		InsertRate: 40,
	})
	if err != nil {
		t.Fatal(err)
	}

	// All queries answered in full.
	for _, o := range res.Outcomes {
		if len(o.Results) != 15 {
			t.Fatalf("query %d: %d results", o.Index, len(o.Results))
		}
	}
	// All inserts landed.
	if tree.Len() != 8000+300 {
		t.Fatalf("tree has %d objects", tree.Len())
	}
	if err := tree.Tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := tree.CheckPlacements(); err != nil {
		t.Fatal(err)
	}
	// The shared cache saw traffic.
	if cache.Stats().Hits == 0 {
		t.Error("shared cache never hit")
	}
	// Physical drive reports: 6 logical × 2 mirrors.
	if len(res.Disks) != 12 {
		t.Fatalf("%d drive reports", len(res.Disks))
	}
	// Timing sanity.
	if res.MeanResponse <= 0 || res.MeanInsertResponse <= 0 {
		t.Error("missing response times")
	}
}
