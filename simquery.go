// Package simquery reproduces "Similarity Query Processing Using Disk
// Arrays" (Papadopoulos & Manolopoulos, SIGMOD 1998) as a Go library: a
// parallel R*-tree declustered over a simulated RAID-0 disk array, the
// four k-nearest-neighbor algorithms of the paper (BBSS, FPSS, CRSS and
// the hypothetical weak-optimal WOPTSS), and an event-driven system
// simulator measuring multi-user response times.
//
// Quick start:
//
//	ix, err := simquery.NewIndex(simquery.IndexConfig{Dim: 2, NumDisks: 10})
//	if err != nil { ... }
//	for i, p := range points {
//		_ = ix.Insert(p, simquery.ObjectID(i))
//	}
//	neighbors, stats, err := ix.KNN(queryPoint, 10, "crss")
//
// See the examples directory for runnable programs and package
// internal/harness for the code that regenerates every figure and table
// of the paper's evaluation.
package simquery

import (
	"repro/internal/core"
)

// Re-exported API. See package repro/internal/core for documentation.
type (
	// Point is an n-dimensional query or data point.
	Point = core.Point
	// Rect is an axis-aligned minimum bounding rectangle.
	Rect = core.Rect
	// ObjectID identifies an indexed object.
	ObjectID = core.ObjectID
	// Neighbor is one k-NN answer: an object and its squared distance.
	Neighbor = core.Neighbor
	// QueryStats counts node accesses, parallel batches and CPU work.
	QueryStats = core.QueryStats
	// Index is a similarity-search index over a simulated disk array.
	Index = core.Index
	// IndexConfig configures an Index.
	IndexConfig = core.IndexConfig
	// SimulatedWorkload describes a timed multi-user experiment.
	SimulatedWorkload = core.SimulatedWorkload
	// RunResult aggregates a simulated workload run.
	RunResult = core.RunResult
	// QueryOutcome is the timing record of one simulated query.
	QueryOutcome = core.QueryOutcome
	// Engine is the real concurrent k-NN execution engine: one worker
	// goroutine per simulated disk, many client goroutines. Open one
	// with Index.NewEngine.
	Engine = core.Engine
	// EngineConfig tunes the concurrent engine.
	EngineConfig = core.EngineConfig
	// EngineStats are the engine's cumulative counters.
	EngineStats = core.EngineStats
	// EngineSnapshot is a diffable observability snapshot of the
	// engine: counters, per-disk gauges with the declustering balance
	// ratio, and latency histograms — see Engine.Snapshot.
	EngineSnapshot = core.EngineSnapshot
	// InvalidQueryError reports a malformed k-NN query (k <= 0, nil
	// point, dimensionality mismatch), rejected identically by every
	// execution path.
	InvalidQueryError = core.InvalidQueryError
	// FaultInjector deterministically injects drive failures and
	// latency spikes into the engine's replica reads — see
	// EngineConfig.Fault.
	FaultInjector = core.FaultInjector
	// DriveFaults is one drive's fault program for a FaultInjector.
	DriveFaults = core.DriveFaults
	// ErrDataUnavailable is the typed degraded-mode error: a page had
	// no live replica, so the query failed rather than answer wrongly.
	ErrDataUnavailable = core.ErrDataUnavailable
)

// NewIndex creates an empty disk-array similarity index.
func NewIndex(cfg IndexConfig) (*Index, error) { return core.NewIndex(cfg) }

// Algorithms lists the built-in k-NN algorithm names: bbss, fpss, crss,
// woptss and the eps-series baseline.
func Algorithms() []string { return core.Algorithms() }

// NewFaultInjector creates a deterministic fault injector for
// EngineConfig.Fault; drives are keyed disk*Mirrors+mirror.
func NewFaultInjector(seed int64) *FaultInjector { return core.NewFaultInjector(seed) }
