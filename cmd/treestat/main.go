// Command treestat builds a parallel R*-tree over a data set and prints
// its structure, fill factors, page-to-disk distribution and invariant /
// page-shadow audit results — the tool to inspect what the declustering
// policies actually do.
//
// Usage:
//
//	treestat -set california -disks 10
//	treestat -set gaussian -n 60000 -dim 10 -disks 10 -policy roundrobin
//	treestat -set longbeach -disks 8 -save lb.tree
//	treestat -load lb.tree
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/dataset"
	"repro/internal/decluster"
	"repro/internal/disk"
	"repro/internal/pagestore"
	"repro/internal/parallel"
	"repro/internal/rtree"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("treestat: ")

	var (
		set      = flag.String("set", "gaussian", "data set name")
		n        = flag.Int("n", 10000, "population")
		dim      = flag.Int("dim", 2, "dimensionality")
		disks    = flag.Int("disks", 10, "number of disks")
		policy   = flag.String("policy", "proximity", "declustering policy")
		pageSize = flag.Int("page", 4096, "page size in bytes")
		seed     = flag.Int64("seed", 1, "seed")
		spheres  = flag.Bool("sr", false, "build the SR-tree variant (bounding spheres)")
		packed   = flag.Bool("packed", false, "bulk-load with STR packing instead of inserting")
		saveTo   = flag.String("save", "", "write a snapshot of the built tree to this file")
		loadFrom = flag.String("load", "", "load a snapshot instead of building")
	)
	flag.Parse()

	var tree *parallel.Tree
	var treeDim int
	if *loadFrom != "" {
		f, err := os.Open(*loadFrom)
		if err != nil {
			log.Fatal(err)
		}
		tree, err = parallel.LoadSnapshot(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		treeDim = tree.Config().Dim
		*set = "(snapshot " + *loadFrom + ")"
		*pageSize = snapshotPage(tree)
	} else {
		pts, err := dataset.ByName(*set, *n, *dim, *seed)
		if err != nil {
			log.Fatal(err)
		}
		pol, err := decluster.ByName(*policy, *seed)
		if err != nil {
			log.Fatal(err)
		}
		tree, err = parallel.New(parallel.Config{
			Dim:        pts[0].Dim(),
			NumDisks:   *disks,
			Cylinders:  disk.HPC2200A().Cylinders,
			PageSize:   *pageSize,
			Policy:     pol,
			Seed:       *seed,
			UseSpheres: *spheres,
		})
		if err != nil {
			log.Fatal(err)
		}
		if *packed {
			err = tree.BuildPointsPacked(pts)
		} else {
			err = tree.BuildPoints(pts)
		}
		if err != nil {
			log.Fatal(err)
		}
		treeDim = pts[0].Dim()
	}

	st := tree.ComputeStats()
	fmt.Printf("set %s: %d points, %d-d, page %dB (capacity %d entries)\n",
		*set, st.Objects, treeDim, *pageSize, tree.Config().MaxEntries)
	fmt.Printf("height %d, %d nodes (%d leaves, %d internal)\n", st.Height, st.Nodes, st.Leaves, st.Internal)
	fmt.Printf("fill: leaves %.1f%%, directory %.1f%%\n", st.AvgLeafFill*100, st.AvgDirFill*100)

	// Per-level node counts.
	perLevel := map[int]int{}
	tree.Walk(func(nd *rtree.Node, _ int) bool {
		perLevel[nd.Level]++
		return true
	})
	for l := st.Height - 1; l >= 0; l-- {
		fmt.Printf("  level %d: %d nodes\n", l, perLevel[l])
	}

	d := tree.Distribution()
	fmt.Printf("\npolicy %s: pages per disk (imbalance %.3f):\n", *policy, d.Imbalance)
	maxPages := 0
	for _, c := range d.Pages {
		if c > maxPages {
			maxPages = c
		}
	}
	for i, c := range d.Pages {
		bar := ""
		if maxPages > 0 {
			bar = strings.Repeat("#", c*40/maxPages)
		}
		fmt.Printf("  disk %2d: %5d %s\n", i, c, bar)
	}

	if err := tree.Tree.CheckInvariants(); err != nil {
		log.Fatalf("INVARIANT VIOLATION: %v", err)
	}
	if err := tree.CheckPlacements(); err != nil {
		log.Fatalf("PLACEMENT VIOLATION: %v", err)
	}
	fmt.Println("\ninvariants: OK (MBRs, counts, balance, fill, placements)")

	// Page-codec audit: every node must round-trip through a page image.
	codec := pagestore.Codec{Dim: treeDim, PageSize: *pageSize, Spheres: tree.Config().UseSpheres}
	pages := 0
	var bad error
	tree.Walk(func(nd *rtree.Node, _ int) bool {
		buf, err := codec.Encode(nd)
		if err != nil {
			bad = err
			return false
		}
		if _, err := codec.Decode(buf); err != nil {
			bad = err
			return false
		}
		pages++
		return true
	})
	if bad != nil {
		log.Fatalf("PAGE CODEC VIOLATION: %v", bad)
	}
	fmt.Printf("page codec: OK (%d nodes fit %dB pages)\n", pages, *pageSize)

	if *saveTo != "" {
		f, err := os.Create(*saveTo)
		if err != nil {
			log.Fatal(err)
		}
		if err := tree.Snapshot(f); err != nil {
			log.Fatal(err)
		}
		info, _ := f.Stat()
		f.Close()
		fmt.Printf("snapshot: wrote %s (%d bytes)\n", *saveTo, info.Size())
	}
}

// snapshotPage reports a page size compatible with a loaded tree's
// capacity for the codec audit.
func snapshotPage(t *parallel.Tree) int {
	cfg := t.Config()
	c := pagestore.Codec{Dim: cfg.Dim, PageSize: cfg.PageSize, Spheres: cfg.UseSpheres}
	if cfg.PageSize > 0 && c.Capacity() >= cfg.MaxEntries {
		return cfg.PageSize
	}
	return 16 + c.EntrySize()*cfg.MaxEntries
}
