// Command simquery builds a parallel R*-tree over a data set and runs a
// single k-NN query with any of the paper's algorithms, printing the
// answers, the access statistics and (with -timing) the simulated
// response time on the disk array.
//
// Usage:
//
//	simquery -set california -disks 10 -k 10 -alg crss
//	simquery -file data.bin -disks 5 -k 100 -alg bbss -timing
//	simquery -set gaussian -n 20000 -dim 5 -k 20 -alg all -timing
//
// With -serve it instead exposes the concurrent engine as an HTTP/JSON
// query service (POST /v1/knn) with per-tenant quotas, queue-depth
// admission control and graceful SIGTERM drain:
//
//	simquery -set california -disks 10 -serve :8080 -coalesce -watermark 32 -quota-rate 100
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simquery: ")

	var (
		set    = flag.String("set", "gaussian", "data set name (see datagen)")
		file   = flag.String("file", "", "load data from a datagen file instead")
		n      = flag.Int("n", 10000, "population for generated sets")
		dim    = flag.Int("dim", 2, "dimensionality for generated sets")
		disks  = flag.Int("disks", 10, "number of disks in the array")
		policy = flag.String("policy", "proximity", "declustering policy")
		k      = flag.Int("k", 10, "number of nearest neighbors")
		alg    = flag.String("alg", "crss", "algorithm: bbss|fpss|crss|woptss|bfss|eps-series|all")
		seed   = flag.Int64("seed", 1, "seed for data, placement and simulation")
		timing = flag.Bool("timing", false, "also simulate the response time on the array")
		sr     = flag.Bool("sr", false, "use the SR-tree access-method variant")
		trace  = flag.Bool("trace", false, "print the algorithm's stage-by-stage trace (CRSS shows its ADAPTIVE/UPDATE/NORMAL/TERMINATE modes)")
		qspec  = flag.String("q", "", "query point as comma-separated coordinates (default: sampled)")
		engine = flag.Bool("engine", false, "also run the query on the real concurrent engine and print its latency snapshot")
		obsFl  = flag.String("obs", "", "serve expvar and pprof debug endpoints on this address (e.g. 127.0.0.1:6060)")

		// Network query service (-serve): expose the concurrent engine
		// over HTTP/JSON instead of running a one-shot query.
		serveFl    = flag.String("serve", "", "serve HTTP/JSON kNN queries on this address (e.g. :8080) instead of running a one-shot query")
		serveCert  = flag.String("serve-cert", "", "TLS certificate file for -serve (with -serve-key)")
		serveKey   = flag.String("serve-key", "", "TLS private key file for -serve")
		quotaRate  = flag.Float64("quota-rate", 0, "per-tenant sustained admission rate in queries/sec (0 = no quotas)")
		quotaBurst = flag.Float64("quota-burst", 0, "per-tenant token-bucket burst (default: quota-rate)")
		watermark  = flag.Int64("watermark", 0, "shed load (429) while any disk's queue depth reaches this (0 = no shedding)")
		sloMs      = flag.Float64("slo-ms", 0, "count served queries slower than this many milliseconds as SLO violations")
		coalesce   = flag.Bool("coalesce", false, "engine/serve mode: merge concurrent fetches of the same page into one disk job")

		// Persistent storage: back the index (and the engine's replicas)
		// with real files instead of memory.
		storeFl = flag.String("store", "mem", "page store: mem (volatile) or file (disk-backed with WAL crash recovery)")
		dataDir = flag.String("data-dir", "", "directory for -store=file; an existing committed tree is recovered instead of rebuilt")
		mmapFl  = flag.Bool("mmap", false, "with -store=file: serve page reads from a read-only file mapping")

		// Fault injection (engine mode): replicate the page stores and
		// inject deterministic drive failures into the read path.
		mirrors   = flag.Int("mirrors", 1, "physical replicas per engine disk (RAID-1 shadowing when > 1)")
		hedge     = flag.Bool("hedge", false, "hedge slow engine reads against a mirror (needs -mirrors > 1)")
		failDrive = flag.Int("fail-drive", -1, "fail-stop this physical drive (keyed disk*mirrors+mirror; -1 = none)")
		failAfter = flag.Int("fail-after", 0, "with -fail-drive: serve this many I/Os before fail-stopping (0 = dead on arrival)")
		faultP    = flag.Float64("fault-p", 0, "per-I/O transient error probability on every drive")
		spikeP    = flag.Float64("spike-p", 0, "per-I/O latency-spike probability on every drive")
		spikeMs   = flag.Float64("spike-ms", 5, "injected spike duration in milliseconds")
		faultSeed = flag.Int64("fault-seed", 1, "seed for the deterministic fault injector")
	)
	flag.Parse()

	if *obsFl != "" {
		dbg, err := obs.StartDebugServer(*obsFl)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := dbg.Close(); err != nil {
				log.Printf("debug server: %v", err)
			}
		}()
		fmt.Printf("debug server: http://%s/debug/vars (expvar), /debug/pprof (profiles)\n", dbg.Addr())
	}

	pts, err := loadPoints(*file, *set, *n, *dim, *seed)
	if err != nil {
		log.Fatal(err)
	}
	d := pts[0].Dim()

	icfg := core.IndexConfig{
		Dim: d, NumDisks: *disks, Policy: *policy, Seed: *seed, UseSpheres: *sr,
	}
	switch *storeFl {
	case "mem":
	case "file":
		if *dataDir == "" {
			log.Fatal("-store=file requires -data-dir")
		}
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			log.Fatal(err)
		}
		icfg.DataDir = *dataDir
		icfg.Mmap = *mmapFl
	default:
		log.Fatalf("unknown -store %q (want mem or file)", *storeFl)
	}
	ix, err := core.NewIndex(icfg)
	if err != nil {
		log.Fatal(err)
	}
	defer ix.Close()
	if rec := ix.Recovered(); rec > 0 {
		fmt.Printf("recovered %d committed points from %s\n", rec, *dataDir)
	} else {
		if err := ix.InsertAll(pts, 0); err != nil {
			log.Fatal(err)
		}
		if err := ix.Commit(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("indexed %d points (%d-d) on %d disks, policy %s, %d pages\n",
		ix.Len(), d, *disks, *policy, ix.Tree().Store().Len())
	if icfg.DataDir != "" {
		s := ix.StorageStats()
		fmt.Printf("durable store: %d page writes, %d WAL appends (%d syncs), %d records replayed in %d recoveries\n",
			s.PageWrites, s.WALAppends, s.WALSyncs, s.ReplayedRecords, s.Recoveries)
	}

	// engineCfg assembles the concurrent-engine configuration shared by
	// -engine and -serve: replica stores, optional file backing, and
	// the deterministic fault injector.
	engineCfg := func() (core.EngineConfig, bool) {
		cfg := core.EngineConfig{
			Mirrors: *mirrors, HedgeReads: *hedge, CoalesceFetches: *coalesce,
		}
		if icfg.DataDir != "" {
			// File mode extends to the engine: every replica gets its own
			// on-disk page file under <data-dir>/replicas.
			cfg.DataDir = filepath.Join(*dataDir, "replicas")
			cfg.Mmap = *mmapFl
			if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
				log.Fatal(err)
			}
		}
		injecting := *failDrive >= 0 || *faultP > 0 || *spikeP > 0
		if injecting {
			inj := core.NewFaultInjector(*faultSeed)
			for drv := 0; drv < *disks*max(*mirrors, 1); drv++ {
				f := core.DriveFaults{Transient: *faultP, SpikeProb: *spikeP,
					SpikeDelay: time.Duration(*spikeMs * float64(time.Millisecond))}
				if drv == *failDrive {
					if *failAfter > 0 {
						f.FailAfter = *failAfter
					} else {
						f.Dead = true
					}
				}
				inj.Set(drv, f)
			}
			cfg.Fault = inj
		}
		return cfg, injecting
	}

	if *serveFl != "" {
		cfg, _ := engineCfg()
		eng, err := ix.NewEngine(cfg)
		if err != nil {
			log.Fatal(err)
		}
		defer eng.Close()
		if *obsFl != "" {
			eng.PublishExpvar("engine")
		}
		srv, err := server.New(server.Config{
			Backend:        eng.Exec(),
			QueueWatermark: *watermark,
			QuotaRate:      *quotaRate,
			QuotaBurst:     *quotaBurst,
			SLOTarget:      time.Duration(*sloMs * float64(time.Millisecond)),
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := srv.Start(*serveFl, *serveCert, *serveKey); err != nil {
			log.Fatal(err)
		}
		scheme := "http"
		if *serveCert != "" {
			scheme = "https"
		}
		fmt.Printf("query service: %s://%s/v1/knn (POST), /v1/stats, /healthz\n", scheme, srv.Addr())

		// Serve until SIGINT/SIGTERM, then drain in-flight queries.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		<-ctx.Done()
		fmt.Println("\nshutting down: draining in-flight queries")
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Fatalf("shutdown: %v", err)
		}
		s := eng.Snapshot()
		fmt.Printf("served %d queries (%d pages fetched, %d coalesced); drained cleanly\n",
			s.Stats.Queries, s.Stats.PagesFetched, s.Stats.FetchesCoalesced)
		return
	}

	var q geom.Point
	if *qspec != "" {
		if q, err = parsePoint(*qspec, d); err != nil {
			log.Fatal(err)
		}
	} else {
		q = dataset.SampleQueries(pts, 1, *seed+5)[0]
	}
	fmt.Printf("query: %s, k = %d\n\n", q, *k)

	algs := []string{*alg}
	if *alg == "all" {
		algs = core.Algorithms()
	}
	for _, name := range algs {
		var res []core.Neighbor
		var stats *core.QueryStats
		var err error
		if *trace {
			res, stats, err = ix.KNNTraced(q, *k, name, func(line string) {
				fmt.Printf("    | %s\n", line)
			})
		} else {
			res, stats, err = ix.KNN(q, *k, name)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%s] visited %d nodes in %d parallel batches (max batch %d, CPU %.0f instr)\n",
			name, stats.NodesVisited, stats.Batches, stats.MaxParallel, stats.Instructions)
		for i, r := range res {
			if i >= 5 {
				fmt.Printf("  ... %d more\n", len(res)-5)
				break
			}
			fmt.Printf("  #%d object %d at distance %.6f\n", i+1, r.Object, math.Sqrt(r.DistSq))
		}
		if *timing {
			run, err := ix.Simulate(core.SimulatedWorkload{Algorithm: name, K: *k, Queries: []geom.Point{q}})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  simulated response time: %.4f sec\n", run.MeanResponse)
		}
		fmt.Println()
	}

	if *engine {
		cfg, injecting := engineCfg()
		eng, err := ix.NewEngine(cfg)
		if err != nil {
			log.Fatal(err)
		}
		defer eng.Close()
		if *obsFl != "" {
			eng.PublishExpvar("engine")
		}
		for _, name := range algs {
			if _, _, err := eng.KNN(context.Background(), q, *k, name); err != nil {
				var dataErr *core.ErrDataUnavailable
				if errors.As(err, &dataErr) {
					fmt.Printf("[%s] degraded mode: %v\n", name, dataErr)
					continue
				}
				log.Fatal(err)
			}
		}
		s := eng.Snapshot()
		fmt.Printf("concurrent engine (%d workers): %d queries, %d pages fetched, disk balance ratio %.2f\n",
			eng.NumWorkers(), s.Stats.Queries, s.Stats.PagesFetched, s.BalanceRatio)
		fmt.Printf("  query latency p50/p95/p99: %v / %v / %v\n",
			secs(s.QueryLatency.P50()), secs(s.QueryLatency.P95()), secs(s.QueryLatency.P99()))
		fmt.Printf("  fetch latency p50/p95/p99: %v / %v / %v\n",
			secs(s.FetchLatency.P50()), secs(s.FetchLatency.P95()), secs(s.FetchLatency.P99()))
		if injecting {
			fmt.Printf("  fault path: %d retries, %d redirects, %d hedges (%d won), %d fetch errors, %d replicas degraded\n",
				s.Faults.Retries, s.Faults.Redirects, s.Faults.Hedges, s.Faults.HedgeWins,
				s.Stats.FetchErrors, s.Faults.DisksDegraded)
		}
	}
}

// secs renders a histogram quantile (in seconds) as a duration.
func secs(v float64) time.Duration {
	return time.Duration(v * float64(time.Second)).Round(time.Microsecond)
}

func loadPoints(file, set string, n, dim int, seed int64) ([]geom.Point, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dataset.Load(f)
	}
	return dataset.ByName(set, n, dim, seed)
}

func parsePoint(spec string, dim int) (geom.Point, error) {
	var p geom.Point
	start := 0
	for i := 0; i <= len(spec); i++ {
		if i == len(spec) || spec[i] == ',' {
			var v float64
			if _, err := fmt.Sscanf(spec[start:i], "%g", &v); err != nil {
				return nil, fmt.Errorf("bad coordinate %q", spec[start:i])
			}
			p = append(p, v)
			start = i + 1
		}
	}
	if p.Dim() != dim {
		return nil, fmt.Errorf("query has %d coordinates, data is %d-d", p.Dim(), dim)
	}
	return p, nil
}
