// Command simquerylint is the repo's custom static-analysis suite,
// packaged as a `go vet` tool (the unitchecker protocol). Run it as
//
//	go build -o bin/simquerylint ./cmd/simquerylint
//	go vet -vettool=$(pwd)/bin/simquerylint ./...
//
// or simply `make analyze`. See internal/lint for the analyzers:
// simdeterminism, floatcmp, lockcheck and statscomplete.
package main

import "repro/internal/lint"

func main() {
	lint.Vettool(lint.All())
}
