// Command simquerylint is the repo's custom static-analysis suite. It
// speaks two protocols:
//
// As a `go vet` tool (the unitchecker protocol), for per-package runs
// with full build-graph fidelity:
//
//	go build -o bin/simquerylint ./cmd/simquerylint
//	go vet -vettool=$(pwd)/bin/simquerylint ./...
//
// or simply `make analyze`. Invoked directly it is a whole-module
// driver that loads every package from source, which is what the
// cross-package modes need:
//
//	simquerylint -source . -sarif findings.sarif   # SARIF 2.1.0 artifact
//	simquerylint -source . -audit                  # stale //lint:allow report
//	simquerylint -source . -github                 # GitHub Actions annotations
//
// See internal/lint for the analyzers: the AST-local suite
// (simdeterminism, floatcmp, lockcheck, statscomplete) and the
// CFG/dataflow protocol suite (tracepair, fsyncorder, ctxcancel,
// errlost).
package main

import (
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	if isVettoolInvocation(os.Args[1:]) {
		lint.Vettool(lint.All())
		return
	}
	os.Exit(lint.Standalone(os.Args[1:], os.Stdout, os.Stderr))
}

// isVettoolInvocation recognizes the three call shapes cmd/go uses for
// a vettool: -V=full (version probe), -flags (flag discovery), and a
// single vet.cfg path argument.
func isVettoolInvocation(args []string) bool {
	for _, a := range args {
		if strings.HasPrefix(a, "-V=") || a == "-flags" {
			return true
		}
	}
	return len(args) == 1 && strings.HasSuffix(args[0], ".cfg")
}
