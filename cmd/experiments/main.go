// Command experiments regenerates the figures and tables of the paper's
// evaluation (Section 4) and the DESIGN.md ablations.
//
// Usage:
//
//	experiments -list
//	experiments -exp fig8-cp
//	experiments -exp all -scale 0.1 -queries 20
//
// At -scale 1 (default) the populations match the paper; smaller scales
// shrink the data sets and query counts proportionally for quick runs.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/harness"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		exp     = flag.String("exp", "", "experiment id, or \"all\"")
		list    = flag.Bool("list", false, "list experiment ids")
		scale   = flag.Float64("scale", 1.0, "population scale relative to the paper")
		queries = flag.Int("queries", 0, "queries per measured point (0 = 100×scale)")
		seed    = flag.Int64("seed", 1998, "experiment seed")
		csvOut  = flag.Bool("csv", false, "emit CSV instead of an aligned table")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, r := range harness.Experiments() {
			fmt.Printf("  %-11s %s\n", r.ID, r.Description)
		}
		if *exp == "" {
			fmt.Println("\nrun with -exp <id> or -exp all")
		}
		return
	}

	opt := harness.Options{Scale: *scale, Queries: *queries, Seed: *seed}
	if *exp == "all" {
		for _, r := range harness.Experiments() {
			runOne(r.ID, opt, *csvOut)
		}
		return
	}
	runOne(*exp, opt, *csvOut)
}

func runOne(id string, opt harness.Options, csvOut bool) {
	start := time.Now()
	tb, err := harness.Run(id, opt)
	if err != nil {
		log.Fatal(err)
	}
	if csvOut {
		fmt.Printf("# %s — %s\n", tb.ID, tb.Title)
		if err := tb.WriteCSV(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		return
	}
	tb.Format(os.Stdout)
	fmt.Printf("  [%s in %.1fs]\n\n", id, time.Since(start).Seconds())
}
