// Command datagen generates the evaluation data sets (uniform, gaussian,
// clustered, and the California/Long Beach stand-ins) and writes them in
// the library's binary format, or prints summary statistics.
//
// Usage:
//
//	datagen -set california -out cp.bin
//	datagen -set gaussian -n 60000 -dim 10 -seed 7 -out sg10.bin
//	datagen -set longbeach -stats
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/dataset"
	"repro/internal/geom"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")

	var (
		set   = flag.String("set", "uniform", "data set: uniform|gaussian|clustered|california|longbeach")
		n     = flag.Int("n", 0, "population (0 = paper default for california/longbeach, else 10000)")
		dim   = flag.Int("dim", 2, "dimensionality (ignored by california/longbeach)")
		seed  = flag.Int64("seed", 1, "generator seed")
		out   = flag.String("out", "", "output file (binary format); empty = no file")
		stats = flag.Bool("stats", false, "print summary statistics")
	)
	flag.Parse()

	count := *n
	if count == 0 && *set != "california" && *set != "cp" && *set != "longbeach" && *set != "lb" {
		count = 10000
	}
	pts, err := dataset.ByName(*set, count, *dim, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d points, %d-d, set %s, seed %d\n", len(pts), pts[0].Dim(), *set, *seed)

	if *stats {
		printStats(pts)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := dataset.Save(f, pts); err != nil {
			log.Fatal(err)
		}
		info, _ := f.Stat()
		fmt.Printf("wrote %s (%d bytes)\n", *out, info.Size())
	}
}

func printStats(pts []geom.Point) {
	dim := pts[0].Dim()
	lo := pts[0].Clone()
	hi := pts[0].Clone()
	mean := make([]float64, dim)
	for _, p := range pts {
		for d := 0; d < dim; d++ {
			if p[d] < lo[d] {
				lo[d] = p[d]
			}
			if p[d] > hi[d] {
				hi[d] = p[d]
			}
			mean[d] += p[d]
		}
	}
	for d := 0; d < dim; d++ {
		mean[d] /= float64(len(pts))
		fmt.Printf("axis %d: min %.4f max %.4f mean %.4f\n", d, lo[d], hi[d], mean[d])
	}
}
