package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: AMD EPYC 7B13
BenchmarkKernels/scalar/dmin/d=2-8         	    3000	       450.0 ns/op	        92.00 entries/batch
BenchmarkKernels/scalar/dmin/d=2-8         	    3000	       470.0 ns/op	        92.00 entries/batch
BenchmarkKernels/batch/dmin/d=2-8          	    3000	       230.0 ns/op	        92.00 entries/batch
BenchmarkKernels/batch/dmin/d=2-8          	    3000	       230.0 ns/op	        92.00 entries/batch
BenchmarkKNNBBSS-8                         	    1000	     91000 ns/op	        42.50 pages/query	    2048 B/op	      12 allocs/op
PASS
ok  	repro	2.034s
pkg: repro/internal/query
BenchmarkMakeCandidates/batch/d=2/fanout=92/spheres=false-8   	   10000	      1200 ns/op
BenchmarkMakeCandidates/scalar/d=2/fanout=92/spheres=false-8  	   10000	      4800 ns/op
PASS
ok  	repro/internal/query	1.002s
`

func parseSample(t *testing.T) *Report {
	t.Helper()
	rep, err := parseBench(strings.Split(sampleOutput, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestParseHeaderAndAveraging(t *testing.T) {
	rep := parseSample(t)
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || rep.CPU != "AMD EPYC 7B13" {
		t.Errorf("header = %s/%s/%s", rep.GOOS, rep.GOARCH, rep.CPU)
	}
	if len(rep.Benchmarks) != 5 {
		t.Fatalf("parsed %d benchmarks, want 5", len(rep.Benchmarks))
	}
	var scalar *Benchmark
	for i := range rep.Benchmarks {
		if rep.Benchmarks[i].Name == "BenchmarkKernels/scalar/dmin/d=2" {
			scalar = &rep.Benchmarks[i]
		}
	}
	if scalar == nil {
		t.Fatal("scalar dmin benchmark not found (procs suffix not stripped?)")
	}
	if scalar.Samples != 2 || scalar.NsPerOp != 460.0 || scalar.Procs != 8 {
		t.Errorf("averaging: samples=%d ns=%g procs=%d, want 2/460/8",
			scalar.Samples, scalar.NsPerOp, scalar.Procs)
	}
	if scalar.Package != "repro" {
		t.Errorf("package = %q", scalar.Package)
	}
	if scalar.Metrics["entries/batch"] != 92 {
		t.Errorf("custom metric entries/batch = %g", scalar.Metrics["entries/batch"])
	}
}

func TestMedianDiscardsSpike(t *testing.T) {
	// A descheduled CI sample (3x slower) must not move the report.
	rep, err := parseBench([]string{
		"BenchmarkX-8 100 100 ns/op",
		"BenchmarkX-8 100 102 ns/op",
		"BenchmarkX-8 100 300 ns/op",
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Benchmarks[0].NsPerOp; got != 102 {
		t.Errorf("median ns/op = %g, want 102", got)
	}
}

func TestParseBenchmemAndCustomMetrics(t *testing.T) {
	rep := parseSample(t)
	for _, b := range rep.Benchmarks {
		if b.Name != "BenchmarkKNNBBSS" {
			continue
		}
		if b.BytesPerOp == nil || *b.BytesPerOp != 2048 {
			t.Errorf("bytes/op = %v", b.BytesPerOp)
		}
		if b.AllocsPerOp == nil || *b.AllocsPerOp != 12 {
			t.Errorf("allocs/op = %v", b.AllocsPerOp)
		}
		if b.Metrics["pages/query"] != 42.5 {
			t.Errorf("pages/query = %g", b.Metrics["pages/query"])
		}
		return
	}
	t.Fatal("BenchmarkKNNBBSS not parsed")
}

func TestSpeedupPairing(t *testing.T) {
	rep := parseSample(t)
	if len(rep.Speedups) != 2 {
		t.Fatalf("derived %d speedups, want 2: %+v", len(rep.Speedups), rep.Speedups)
	}
	// Sorted by name: BenchmarkKernels/... before BenchmarkMakeCandidates/...
	k := rep.Speedups[0]
	if k.Name != "BenchmarkKernels/dmin/d=2" {
		t.Errorf("pair name = %q", k.Name)
	}
	if k.Speedup != 2.0 {
		t.Errorf("kernel speedup = %g, want 2.0 (460/230)", k.Speedup)
	}
	mc := rep.Speedups[1]
	if mc.Name != "BenchmarkMakeCandidates/d=2/fanout=92/spheres=false" || mc.Speedup != 4.0 {
		t.Errorf("candidates pair = %+v", mc)
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := parseBench([]string{"PASS", "ok  repro  1s"}); err == nil {
		t.Error("want error for input without benchmark lines")
	}
}

func TestParseSkipsMalformedLines(t *testing.T) {
	rep, err := parseBench([]string{
		"BenchmarkBroken-8 notanumber 12 ns/op",
		"BenchmarkOK-8 100 12.5 ns/op",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Name != "BenchmarkOK" {
		t.Errorf("benchmarks = %+v", rep.Benchmarks)
	}
}
