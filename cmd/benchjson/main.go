// Command benchjson converts `go test -bench` output into a versioned
// JSON report and compares two reports benchstat-style.
//
// Parse mode reads benchmark output (files or stdin) and writes one JSON
// document per run:
//
//	go test -run xxx -bench BenchmarkKernels -benchmem . | benchjson parse -o BENCH_2026-08-08.json
//
// Repeated samples of the same benchmark (-count N) are folded to their
// median and the sample count recorded. Benchmarks whose sub-name contains a `scalar`
// path segment are paired with their `batch` twin and the ns/op ratio is
// recorded in the `speedups` section — the kernel-vectorization
// trajectory this repo tracks across commits.
//
// Compare mode diffs a new report against a baseline and warns (never
// fails) when ns/op regresses by more than the threshold:
//
//	benchjson compare -threshold 10 BENCH_baseline.json BENCH_new.json
//
// Under GitHub Actions (GITHUB_ACTIONS=true, or -github) regressions are
// emitted as ::warning:: workflow annotations. The exit status is 0 as
// long as both reports parse: benchmark noise on shared CI runners must
// not block merges, it should only leave a visible trail.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// SchemaVersion identifies the report layout. Bump only with a
// compatibility note in DESIGN.md; compare mode refuses mismatches.
const SchemaVersion = 1

// Report is the top-level JSON document.
type Report struct {
	SchemaVersion int         `json:"schema_version"`
	Date          string      `json:"date"`
	GoVersion     string      `json:"go_version,omitempty"`
	GOOS          string      `json:"goos,omitempty"`
	GOARCH        string      `json:"goarch,omitempty"`
	CPU           string      `json:"cpu,omitempty"`
	Benchmarks    []Benchmark `json:"benchmarks"`
	Speedups      []Speedup   `json:"speedups,omitempty"`
}

// Benchmark is one benchmark's averaged result.
type Benchmark struct {
	Name        string             `json:"name"`
	Package     string             `json:"package,omitempty"`
	Procs       int                `json:"procs,omitempty"`
	Samples     int                `json:"samples"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Speedup records one scalar/batch benchmark pair.
type Speedup struct {
	Name     string  `json:"name"` // pair name with the scalar|batch segment removed
	ScalarNs float64 `json:"scalar_ns_per_op"`
	BatchNs  float64 `json:"batch_ns_per_op"`
	Speedup  float64 `json:"speedup"`
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "parse":
		err = runParse(os.Args[2:])
	case "compare":
		err = runCompare(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "benchjson: unknown mode %q\n\n", os.Args[1])
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  benchjson parse   [-o FILE] [-date YYYY-MM-DD] [INPUT...]
  benchjson compare [-threshold PCT] [-github] BASELINE.json NEW.json
`)
	os.Exit(2)
}

// ---------------------------------------------------------------- parse

func runParse(args []string) error {
	fs := flag.NewFlagSet("parse", flag.ExitOnError)
	out := fs.String("o", "", "output file (default stdout)")
	date := fs.String("date", "", "report date, YYYY-MM-DD (default today, UTC)")
	fs.Parse(args)

	var lines []string
	if fs.NArg() == 0 {
		var err error
		if lines, err = readLines(os.Stdin); err != nil {
			return err
		}
	}
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		l, err := readLines(f)
		f.Close()
		if err != nil {
			return err
		}
		lines = append(lines, l...)
	}

	rep, err := parseBench(lines)
	if err != nil {
		return err
	}
	rep.Date = *date
	if rep.Date == "" {
		rep.Date = time.Now().UTC().Format("2006-01-02")
	}
	rep.GoVersion = runtime.Version()

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(*out, buf, 0o644)
}

func readLines(r io.Reader) ([]string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	return lines, sc.Err()
}

// sample is one raw benchmark result line before averaging.
type sample struct {
	iterations int64
	nsPerOp    float64
	bytesPerOp *float64
	allocs     *float64
	metrics    map[string]float64
}

// parseBench parses `go test -bench` text output. Header lines (goos:,
// goarch:, pkg:, cpu:) set context for the benchmark lines that follow;
// everything else (PASS, ok, test logs) is ignored.
func parseBench(lines []string) (*Report, error) {
	rep := &Report{SchemaVersion: SchemaVersion}
	type key struct{ pkg, name string }
	samples := make(map[key][]sample)
	procs := make(map[key]int)
	var order []key
	pkg := ""
	for _, line := range lines {
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			name, p, s, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			k := key{pkg, name}
			if _, seen := samples[k]; !seen {
				order = append(order, k)
			}
			samples[k] = append(samples[k], s)
			procs[k] = p
		}
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in input")
	}
	for _, k := range order {
		rep.Benchmarks = append(rep.Benchmarks, average(k.pkg, k.name, procs[k], samples[k]))
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool {
		a, b := rep.Benchmarks[i], rep.Benchmarks[j]
		if a.Package != b.Package {
			return a.Package < b.Package
		}
		return a.Name < b.Name
	})
	rep.Speedups = deriveSpeedups(rep.Benchmarks)
	return rep, nil
}

// parseBenchLine parses one result line:
//
//	BenchmarkKernels/batch/dmin/d=2-8   3000   417.8 ns/op   0 B/op   0 allocs/op   92.00 entries/batch
//
// The trailing -N on the name is the GOMAXPROCS suffix, split off so
// reports from machines with different core counts still pair up.
func parseBenchLine(line string) (name string, procs int, s sample, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return "", 0, sample{}, false
	}
	name = fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			name, procs = name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", 0, sample{}, false
	}
	s.iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", 0, sample{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			s.nsPerOp = v
		case "B/op":
			s.bytesPerOp = &v
		case "allocs/op":
			s.allocs = &v
		default:
			if s.metrics == nil {
				s.metrics = make(map[string]float64)
			}
			s.metrics[unit] = v
		}
	}
	return name, procs, s, true
}

// average folds repeated samples (-count N) into one Benchmark by
// median: on shared CI runners a single descheduled sample can be 2-3x
// slower than the mode, and the median discards exactly those spikes
// where a mean would smear them into every report.
func average(pkg, name string, procs int, ss []sample) Benchmark {
	b := Benchmark{Name: name, Package: pkg, Procs: procs, Samples: len(ss)}
	var ns, bytesV, allocV []float64
	metricV := make(map[string][]float64)
	for _, s := range ss {
		b.Iterations += s.iterations
		ns = append(ns, s.nsPerOp)
		if s.bytesPerOp != nil {
			bytesV = append(bytesV, *s.bytesPerOp)
		}
		if s.allocs != nil {
			allocV = append(allocV, *s.allocs)
		}
		for unit, v := range s.metrics {
			metricV[unit] = append(metricV[unit], v)
		}
	}
	b.NsPerOp = median(ns)
	if len(bytesV) > 0 {
		v := median(bytesV)
		b.BytesPerOp = &v
	}
	if len(allocV) > 0 {
		v := median(allocV)
		b.AllocsPerOp = &v
	}
	if len(metricV) > 0 {
		b.Metrics = make(map[string]float64, len(metricV))
		for unit, vs := range metricV {
			b.Metrics[unit] = median(vs)
		}
	}
	return b
}

// median returns the middle value (mean of the middle two for even
// counts) of a non-empty sample set.
func median(vs []float64) float64 {
	sort.Float64s(vs)
	n := len(vs)
	if n%2 == 1 {
		return vs[n/2]
	}
	return (vs[n/2-1] + vs[n/2]) / 2
}

// deriveSpeedups pairs every benchmark that has a path segment equal to
// "scalar" with its "batch" twin in the same package and records the
// ns/op ratio. Names are segment-wise so "scalar" inside a longer word
// never matches.
func deriveSpeedups(benches []Benchmark) []Speedup {
	type key struct{ pkg, name string }
	byName := make(map[key]*Benchmark, len(benches))
	for i := range benches {
		byName[key{benches[i].Package, benches[i].Name}] = &benches[i]
	}
	var out []Speedup
	for i := range benches {
		scalar := &benches[i]
		segs := strings.Split(scalar.Name, "/")
		si := -1
		for j, s := range segs {
			if s == "scalar" {
				si = j
				break
			}
		}
		if si < 0 {
			continue
		}
		segs[si] = "batch"
		batch, ok := byName[key{scalar.Package, strings.Join(segs, "/")}]
		if !ok || batch.NsPerOp <= 0 {
			continue
		}
		pair := append(append([]string{}, segs[:si]...), segs[si+1:]...)
		out = append(out, Speedup{
			Name:     strings.Join(pair, "/"),
			ScalarNs: scalar.NsPerOp,
			BatchNs:  batch.NsPerOp,
			Speedup:  scalar.NsPerOp / batch.NsPerOp,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// -------------------------------------------------------------- compare

func runCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	threshold := fs.Float64("threshold", 10, "regression warning threshold, percent ns/op increase")
	github := fs.Bool("github", false, "emit ::warning:: annotations (auto-on under GITHUB_ACTIONS)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
	}
	annotate := *github || os.Getenv("GITHUB_ACTIONS") == "true"

	base, err := loadReport(fs.Arg(0))
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	cur, err := loadReport(fs.Arg(1))
	if err != nil {
		return fmt.Errorf("new report: %w", err)
	}

	type key struct{ pkg, name string }
	baseBy := make(map[key]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[key{b.Package, b.Name}] = b
	}

	regressions, improvements, missing := 0, 0, 0
	fmt.Printf("comparing %s (%s) -> %s (%s), warn threshold +%.0f%% ns/op\n",
		fs.Arg(0), base.Date, fs.Arg(1), cur.Date, *threshold)
	for _, b := range cur.Benchmarks {
		old, ok := baseBy[key{b.Package, b.Name}]
		if !ok {
			fmt.Printf("  new   %-60s %12.1f ns/op\n", b.Name, b.NsPerOp)
			continue
		}
		delete(baseBy, key{b.Package, b.Name})
		if old.NsPerOp <= 0 {
			continue
		}
		pct := (b.NsPerOp - old.NsPerOp) / old.NsPerOp * 100
		switch {
		case pct > *threshold:
			regressions++
			msg := fmt.Sprintf("%s regressed: %.1f -> %.1f ns/op (%+.1f%%)",
				b.Name, old.NsPerOp, b.NsPerOp, pct)
			fmt.Printf("  SLOWER %s\n", msg)
			if annotate {
				fmt.Printf("::warning title=benchmark regression::%s\n", msg)
			}
		case pct < -*threshold:
			improvements++
			fmt.Printf("  faster %s: %.1f -> %.1f ns/op (%+.1f%%)\n",
				b.Name, old.NsPerOp, b.NsPerOp, pct)
		}
	}
	for k := range baseBy {
		missing++
		msg := fmt.Sprintf("benchmark %s present in baseline but missing from new report", k.name)
		fmt.Printf("  gone   %s\n", msg)
		if annotate {
			fmt.Printf("::warning title=benchmark removed::%s\n", msg)
		}
	}
	compareSpeedups(base, cur, annotate)
	fmt.Printf("summary: %d regression(s), %d improvement(s), %d missing — informational only, not a gate\n",
		regressions, improvements, missing)
	return nil
}

// compareSpeedups reports movement in the scalar/batch speedup pairs —
// the headline series of this repo's benchmark trajectory.
func compareSpeedups(base, cur *Report, annotate bool) {
	baseBy := make(map[string]Speedup, len(base.Speedups))
	for _, s := range base.Speedups {
		baseBy[s.Name] = s
	}
	for _, s := range cur.Speedups {
		old, ok := baseBy[s.Name]
		if !ok {
			fmt.Printf("  speedup %-50s %6.2fx (new)\n", s.Name, s.Speedup)
			continue
		}
		fmt.Printf("  speedup %-50s %6.2fx (was %.2fx)\n", s.Name, s.Speedup, old.Speedup)
		if old.Speedup > 0 && s.Speedup < old.Speedup*0.9 && annotate {
			fmt.Printf("::warning title=speedup regression::%s batch speedup fell %.2fx -> %.2fx\n",
				s.Name, old.Speedup, s.Speedup)
		}
	}
}

func loadReport(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("%s: schema_version %d, this tool speaks %d",
			path, rep.SchemaVersion, SchemaVersion)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: report has no benchmarks", path)
	}
	for _, b := range rep.Benchmarks {
		if math.IsNaN(b.NsPerOp) {
			return nil, fmt.Errorf("%s: NaN ns/op for %s", path, b.Name)
		}
	}
	return &rep, nil
}
