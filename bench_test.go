// Repository benchmarks: one macro-benchmark per figure/table of the
// paper (each regenerates its experiment through internal/harness and
// prints the resulting series once), plus micro-benchmarks for the
// performance-critical building blocks.
//
// The macro-benchmarks run at a reduced scale (bench* constants below)
// so that `go test -bench=.` completes in minutes; run
// `go run ./cmd/experiments -exp all` for paper-scale populations.
package simquery_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/decluster"
	"repro/internal/disk"
	"repro/internal/exec"
	"repro/internal/geom"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/pagestore"
	"repro/internal/parallel"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/sim"
	"repro/internal/simarray"
)

const (
	benchScale   = 0.08
	benchQueries = 10
	benchSeed    = 1998
)

var printedTables sync.Map

// benchExperiment regenerates one experiment per iteration and prints
// its table the first time.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	opt := harness.Options{Scale: benchScale, Queries: benchQueries, Seed: benchSeed}
	for i := 0; i < b.N; i++ {
		tb, err := harness.Run(id, opt)
		if err != nil {
			b.Fatal(err)
		}
		if _, done := printedTables.LoadOrStore(id, true); !done {
			fmt.Fprintf(os.Stdout, "\n")
			tb.Format(os.Stdout)
		}
	}
}

// Figures 8–12 and Tables 3–5 of the paper, plus the DESIGN.md ablations.

func BenchmarkFig8CaliforniaPlaces(b *testing.B) { benchExperiment(b, "fig8-cp") }
func BenchmarkFig8LongBeach(b *testing.B)        { benchExperiment(b, "fig8-lb") }
func BenchmarkFig9Gaussian10d(b *testing.B)      { benchExperiment(b, "fig9-sg") }
func BenchmarkFig9Uniform10d(b *testing.B)       { benchExperiment(b, "fig9-su") }
func BenchmarkFig10LongBeach(b *testing.B)       { benchExperiment(b, "fig10-lb") }
func BenchmarkFig10California(b *testing.B)      { benchExperiment(b, "fig10-cp") }
func BenchmarkFig11K10(b *testing.B)             { benchExperiment(b, "fig11-k10") }
func BenchmarkFig11K100(b *testing.B)            { benchExperiment(b, "fig11-k100") }
func BenchmarkFig12Lambda1(b *testing.B)         { benchExperiment(b, "fig12-l1") }
func BenchmarkFig12Lambda20(b *testing.B)        { benchExperiment(b, "fig12-l20") }
func BenchmarkTable3Scaleup(b *testing.B)        { benchExperiment(b, "table3") }
func BenchmarkTable4QuerySize(b *testing.B)      { benchExperiment(b, "table4") }
func BenchmarkTable5Qualitative(b *testing.B)    { benchExperiment(b, "table5") }

func BenchmarkAblationDeclustering(b *testing.B)    { benchExperiment(b, "abl-decl") }
func BenchmarkAblationEpsilonSeries(b *testing.B)   { benchExperiment(b, "abl-eps") }
func BenchmarkAblationActivationBound(b *testing.B) { benchExperiment(b, "abl-act") }
func BenchmarkAblationCache(b *testing.B)           { benchExperiment(b, "abl-cache") }
func BenchmarkAblationSRTree(b *testing.B)          { benchExperiment(b, "abl-sr") }
func BenchmarkAblationRAID1(b *testing.B)           { benchExperiment(b, "abl-raid1") }
func BenchmarkAblationAnalyticModel(b *testing.B)   { benchExperiment(b, "abl-model") }
func BenchmarkAblationBestFirst(b *testing.B)       { benchExperiment(b, "abl-bf") }
func BenchmarkKNNBestFirst(b *testing.B)            { benchKNN(b, query.BFSS{}, 10) }
func BenchmarkAblationPacking(b *testing.B)         { benchExperiment(b, "abl-pack") }
func BenchmarkAblationCPUs(b *testing.B)            { benchExperiment(b, "abl-cpu") }
func BenchmarkAblationXTree(b *testing.B)           { benchExperiment(b, "abl-xtree") }
func BenchmarkAblationRangeQueries(b *testing.B)    { benchExperiment(b, "abl-range") }

func BenchmarkBulkLoadSTR(b *testing.B) {
	pts := dataset.Uniform(20000, 2, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := rtree.New(rtree.Config{Dim: 2, MaxEntries: 92}, nil)
		if err != nil {
			b.Fatal(err)
		}
		items := make([]rtree.Entry, len(pts))
		for j, p := range pts {
			items[j] = rtree.LeafEntry(geom.PointRect(p), rtree.ObjectID(j))
		}
		if err := tr.BulkLoadSTR(items); err != nil {
			b.Fatal(err)
		}
	}
}

// ------------------------------------------------------------------
// Micro-benchmarks for the building blocks.

func BenchmarkGeomMinDist(b *testing.B) {
	rnd := rand.New(rand.NewSource(1))
	p := make(geom.Point, 10)
	lo := make(geom.Point, 10)
	hi := make(geom.Point, 10)
	for d := 0; d < 10; d++ {
		p[d] = rnd.Float64()
		lo[d] = rnd.Float64() * 0.5
		hi[d] = lo[d] + rnd.Float64()*0.5
	}
	r := geom.Rect{Lo: lo, Hi: hi}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = geom.MinDistSq(p, r)
	}
}

func BenchmarkGeomMinMaxDist(b *testing.B) {
	rnd := rand.New(rand.NewSource(1))
	p := make(geom.Point, 10)
	lo := make(geom.Point, 10)
	hi := make(geom.Point, 10)
	for d := 0; d < 10; d++ {
		p[d] = rnd.Float64()
		lo[d] = rnd.Float64() * 0.5
		hi[d] = lo[d] + rnd.Float64()*0.5
	}
	r := geom.Rect{Lo: lo, Hi: hi}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = geom.MinMaxDistSq(p, r)
	}
}

// BenchmarkKernels compares the scalar distance kernels against the
// batch kernels over one node-sized batch of rectangles (the per-page
// entry capacity at each dimensionality — the exact shape of the
// candidate-filtering pass). The bench-json CI job records both series;
// cmd/benchjson derives the batch/scalar speedup per metric and
// dimension from the matching name pairs.
func BenchmarkKernels(b *testing.B) {
	rnd := rand.New(rand.NewSource(benchSeed))
	for _, dim := range []int{2, 3, 4, 8} {
		n := pagestore.Codec{Dim: dim, PageSize: 4096}.Capacity()
		p := make(geom.Point, dim)
		for a := range p {
			p[a] = rnd.Float64()
		}
		rects := make([]geom.Rect, n)
		soa := geom.MakeRectSoA(dim, n)
		for i := range rects {
			lo := make(geom.Point, dim)
			hi := make(geom.Point, dim)
			for a := 0; a < dim; a++ {
				lo[a] = rnd.Float64() * 0.5
				hi[a] = lo[a] + rnd.Float64()*0.5
				soa.Lo[a][i] = lo[a]
				soa.Hi[a][i] = hi[a]
			}
			rects[i] = geom.Rect{Lo: lo, Hi: hi}
		}
		out := make([]float64, n)
		kernels := []struct {
			name   string
			scalar func()
			batch  func()
		}{
			{"dmin",
				func() {
					for j := range rects {
						out[j] = geom.MinDistSq(p, rects[j])
					}
				},
				func() { geom.MinDistSqBatch(p, &soa, out) }},
			{"dmm",
				func() {
					for j := range rects {
						out[j] = geom.MinMaxDistSq(p, rects[j])
					}
				},
				func() { geom.MinMaxDistSqBatch(p, &soa, out) }},
			{"dmax",
				func() {
					for j := range rects {
						out[j] = geom.MaxDistSq(p, rects[j])
					}
				},
				func() { geom.MaxDistSqBatch(p, &soa, out) }},
		}
		for _, k := range kernels {
			k := k
			b.Run(fmt.Sprintf("scalar/%s/d=%d", k.name, dim), func(b *testing.B) {
				b.ReportMetric(float64(n), "entries/batch")
				for i := 0; i < b.N; i++ {
					k.scalar()
				}
			})
			b.Run(fmt.Sprintf("batch/%s/d=%d", k.name, dim), func(b *testing.B) {
				b.ReportMetric(float64(n), "entries/batch")
				for i := 0; i < b.N; i++ {
					k.batch()
				}
			})
		}
	}
}

func BenchmarkRStarInsert2D(b *testing.B) {
	pts := dataset.Uniform(b.N, 2, 1)
	tr, err := rtree.New(rtree.Config{Dim: 2, MaxEntries: 92}, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.InsertPoint(pts[i], rtree.ObjectID(i))
	}
}

func BenchmarkRStarInsert10D(b *testing.B) {
	pts := dataset.Uniform(b.N, 10, 1)
	tr, err := rtree.New(rtree.Config{Dim: 10, MaxEntries: 23}, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.InsertPoint(pts[i], rtree.ObjectID(i))
	}
}

// knnTree builds a shared tree for the per-algorithm k-NN benches.
var knnTreeOnce sync.Once
var knnTree *parallel.Tree
var knnQueries []geom.Point

func knnSetup(tb testing.TB) {
	knnTreeOnce.Do(func() {
		pts := dataset.CaliforniaLike(20000, 3)
		t, err := parallel.New(parallel.Config{
			Dim: 2, NumDisks: 10, Cylinders: disk.HPC2200A().Cylinders,
			Policy: decluster.ProximityIndex{}, Seed: 3,
		})
		if err != nil {
			panic(err)
		}
		if err := t.BuildPoints(pts); err != nil {
			panic(err)
		}
		knnTree = t
		knnQueries = dataset.SampleQueries(pts, 256, 4)
	})
	if knnTree == nil {
		tb.Fatal("knn tree setup failed")
	}
}

func benchKNN(b *testing.B, alg query.Algorithm, k int) {
	b.Helper()
	knnSetup(b)
	d := query.Driver{Tree: knnTree}
	b.ResetTimer()
	var visited, pages int
	for i := 0; i < b.N; i++ {
		_, stats := d.Run(alg, knnQueries[i%len(knnQueries)], k, query.Options{})
		visited += stats.NodesVisited
		pages += stats.DiskAccesses
	}
	b.ReportMetric(float64(visited)/float64(b.N), "nodes/query")
	b.ReportMetric(float64(pages)/float64(b.N), "pages/query")
}

func BenchmarkKNNBBSS(b *testing.B)   { benchKNN(b, query.BBSS{}, 10) }
func BenchmarkKNNFPSS(b *testing.B)   { benchKNN(b, query.FPSS{}, 10) }
func BenchmarkKNNCRSS(b *testing.B)   { benchKNN(b, query.CRSS{}, 10) }
func BenchmarkKNNWOPTSS(b *testing.B) { benchKNN(b, query.WOPTSS{}, 10) }

// BenchmarkEngineThroughput measures end-to-end queries/sec of the real
// concurrent execution engine (package exec) against the sequential
// Driver baseline. The engine sub-benchmarks run GOMAXPROCS client
// goroutines against one shared engine while scaling the per-disk
// worker count; on a multi-core runner throughput grows with workers
// over the sequential path. Compare the queries/sec metric across
// sub-benchmarks.
func BenchmarkEngineThroughput(b *testing.B) {
	knnSetup(b)
	const k = 10

	reportQPS := func(b *testing.B) {
		if s := b.Elapsed().Seconds(); s > 0 {
			b.ReportMetric(float64(b.N)/s, "queries/sec")
		}
	}

	b.Run("sequential", func(b *testing.B) {
		d := query.Driver{Tree: knnTree}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.Run(query.CRSS{}, knnQueries[i%len(knnQueries)], k, query.Options{})
		}
		reportQPS(b)
	})

	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("engine-workers=%dx%d", 10, workers), func(b *testing.B) {
			eng, err := exec.New(knnTree, exec.Config{WorkersPerDisk: workers, CachePages: 1024})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			ctx := context.Background()
			var next atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := int(next.Add(1))
					q := knnQueries[i%len(knnQueries)]
					if _, _, err := eng.KNN(ctx, query.CRSS{}, q, k, query.Options{}); err != nil {
						b.Error(err)
						return
					}
				}
			})
			reportQPS(b)
		})
	}
}

// BenchmarkEngineObserved is the engine-workers=10x2 sub-benchmark of
// BenchmarkEngineThroughput with the full observability pipeline
// attached: a per-query trace observer plus the engine's always-on
// histograms and gauges. The nightly CI job runs both and compares the
// queries/sec metrics — the observed path must stay within noise of
// the uninstrumented one (the obs layer is single atomic ops).
func BenchmarkEngineObserved(b *testing.B) {
	knnSetup(b)
	const k = 10
	eng, err := exec.New(knnTree, exec.Config{WorkersPerDisk: 2, CachePages: 1024})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	ctx := context.Background()
	var events atomic.Uint64
	obsv := obs.ObserverFunc(func(obs.Event) { events.Add(1) })
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(next.Add(1))
			q := knnQueries[i%len(knnQueries)]
			if _, _, err := eng.KNN(ctx, query.CRSS{}, q, k, query.Options{Observer: obsv}); err != nil {
				b.Error(err)
				return
			}
		}
	})
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "queries/sec")
	}
	b.ReportMetric(float64(events.Load())/float64(b.N), "events/query")
}

// TestObservedOverhead is the nightly overhead smoke check (skipped
// unless OBS_OVERHEAD is set): it times the same query mix through one
// engine with and without a trace observer attached and fails if the
// observed path is more than 25% slower — a loose bound chosen to
// survive CI noise while still catching an accidental lock or
// allocation on the hot path. Use the benchmark pair above for precise
// numbers.
func TestObservedOverhead(t *testing.T) {
	if os.Getenv("OBS_OVERHEAD") == "" {
		t.Skip("set OBS_OVERHEAD=1 to run the observability overhead check")
	}
	knnSetup(t)
	eng, err := exec.New(knnTree, exec.Config{WorkersPerDisk: 2, CachePages: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx := context.Background()
	var sink atomic.Uint64
	obsv := obs.ObserverFunc(func(obs.Event) { sink.Add(1) })

	const rounds, queriesPerRound = 5, 200
	run := func(opts query.Options) float64 {
		best := 0.0
		for r := 0; r < rounds; r++ {
			start := time.Now()
			for i := 0; i < queriesPerRound; i++ {
				if _, _, err := eng.KNN(ctx, query.CRSS{}, knnQueries[i%len(knnQueries)], 10, opts); err != nil {
					t.Fatal(err)
				}
			}
			if s := time.Since(start).Seconds(); best == 0 || s < best {
				best = s
			}
		}
		return best
	}
	run(query.Options{}) // warm the engine cache for both measurements
	base := run(query.Options{})
	observed := run(query.Options{Observer: obsv})
	ratio := observed / base
	t.Logf("uninstrumented %.4fs, observed %.4fs, ratio %.3f (%d events)", base, observed, ratio, sink.Load())
	if ratio > 1.25 {
		t.Errorf("observed path is %.0f%% slower than uninstrumented (limit 25%%)", (ratio-1)*100)
	}
}

func BenchmarkPageCodecEncode(b *testing.B) {
	c := pagestore.Codec{Dim: 2, PageSize: 4096}
	n := &rtree.Node{ID: 1, Level: 0}
	rnd := rand.New(rand.NewSource(1))
	for i := 0; i < c.Capacity(); i++ {
		x, y := rnd.Float64(), rnd.Float64()
		n.Entries = append(n.Entries, rtree.LeafEntry(geom.PointRect(geom.Point{x, y}), rtree.ObjectID(i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(n); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimKernelEvents(b *testing.B) {
	s := sim.New()
	st := sim.NewStation(s, "d")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Submit(0.001, nil)
		if i%1024 == 0 {
			s.Run()
		}
	}
	s.Run()
}

func BenchmarkSimulatedWorkload(b *testing.B) {
	knnSetup(b)
	qs := knnQueries[:32]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := simarray.MeanResponseOf(knnTree, simarray.Config{Seed: 1}, simarray.Workload{
			Algorithm: query.CRSS{}, K: 10, Queries: qs, ArrivalRate: 10,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
